package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dixq"
	"dixq/internal/exec"
	"dixq/internal/obs"
)

func testServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	doc, err := dixq.ParseDocument(dixq.XMarkFigure1)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(map[string]*dixq.Document{"auction.xml": doc}, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	return ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestHealthAndDocs(t *testing.T) {
	ts := testServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/docs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out DocsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Docs) != 1 || out.Docs[0].Name != "auction.xml" || out.Docs[0].Nodes != 43 {
		t.Fatalf("docs = %+v", out)
	}
	if out.Version == 0 {
		t.Fatalf("catalog version = 0 after loading a document")
	}
}

func TestQueryAllEngines(t *testing.T) {
	ts := testServer(t, Config{})
	for _, engine := range []string{"", "di-msj", "di-nlj", "interp", "generic-sql"} {
		resp, body := postJSON(t, ts.URL+"/query", QueryRequest{Query: dixq.XMarkQ8, Engine: engine})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("engine %q: status %d: %s", engine, resp.StatusCode, body)
		}
		var out QueryResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if out.XML != `<item person="Cong Rosca">1</item>` || out.Trees != 1 {
			t.Fatalf("engine %q: %+v", engine, out)
		}
		if (engine == "" || strings.HasPrefix(engine, "di-")) && out.Stats == nil {
			t.Fatalf("engine %q: missing stats", engine)
		}
	}
}

func TestQueryIndent(t *testing.T) {
	ts := testServer(t, Config{})
	_, body := postJSON(t, ts.URL+"/query", QueryRequest{
		Query:  `for $p in document("auction.xml")/site/people/person return <n>{$p/name/text()}</n>`,
		Indent: true,
	})
	var out QueryResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.XML, "\n") || out.Trees != 2 {
		t.Fatalf("indent = %+v", out)
	}
}

func TestQueryErrors(t *testing.T) {
	ts := testServer(t, Config{})
	cases := []struct {
		body   any
		status int
	}{
		{QueryRequest{Query: `$$$`}, http.StatusBadRequest},
		{QueryRequest{}, http.StatusBadRequest},
		{QueryRequest{Query: `$x`, Engine: "bogus"}, http.StatusBadRequest},
		{QueryRequest{Query: `document("missing")`}, http.StatusUnprocessableEntity},
		{"not json at all", http.StatusBadRequest},
	}
	for _, tt := range cases {
		resp, body := postJSON(t, ts.URL+"/query", tt.body)
		if resp.StatusCode != tt.status {
			t.Errorf("%+v: status %d (%s), want %d", tt.body, resp.StatusCode, body, tt.status)
		}
	}
	// Wrong method.
	resp, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /query status = %d", resp.StatusCode)
	}
}

func TestQueryBudget(t *testing.T) {
	doc := dixq.GenerateXMark(0.01, 1)
	srv := New(map[string]*dixq.Document{"auction.xml": doc}, Config{MaxTuples: 10_000, Timeout: time.Minute})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, _ := postJSON(t, ts.URL+"/query", QueryRequest{Query: dixq.XMarkQ8, Engine: "di-nlj"})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("budget status = %d", resp.StatusCode)
	}
	// MSJ fits the same budget.
	resp, _ = postJSON(t, ts.URL+"/query", QueryRequest{Query: dixq.XMarkQ8, Engine: "di-msj"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("msj status = %d", resp.StatusCode)
	}
}

func TestExplainAndSQL(t *testing.T) {
	ts := testServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/explain", QueryRequest{Query: dixq.XMarkQ8})
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "merge-join") {
		t.Fatalf("explain: %d %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/sql", QueryRequest{Query: dixq.XMarkQ8})
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "WITH") {
		t.Fatalf("sql: %d %s", resp.StatusCode, body)
	}
	resp, _ = postJSON(t, ts.URL+"/sql", QueryRequest{Query: `sort(document("auction.xml"))`})
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("unsupported sql status = %d", resp.StatusCode)
	}
}

func TestConcurrentQueries(t *testing.T) {
	ts := testServer(t, Config{})
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			resp, _ := postJSON(t, ts.URL+"/query", QueryRequest{Query: dixq.XMarkQ8})
			if resp.StatusCode != http.StatusOK {
				done <- &json.UnsupportedValueError{}
				return
			}
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal("concurrent query failed")
		}
	}
}

// TestSharedWorkerBudget locks the process-wide parallelism contract:
// however many queries run concurrently and whatever Parallelism each
// requests, the extra workers drawn at any instant never exceed the one
// process budget — concurrent requests degrade toward serial instead of
// multiplying goroutines. It also checks the worker gauge drains to zero
// and every parallel result matches the serial one digit for digit.
func TestSharedWorkerBudget(t *testing.T) {
	const budget = 3
	prev := exec.SetLimit(budget)
	defer exec.SetLimit(prev)
	exec.ResetHighWater()

	ts := testServer(t, Config{})
	serialResp, serialBody := postJSON(t, ts.URL+"/query", QueryRequest{Query: dixq.XMarkQ8, Parallelism: 1})
	if serialResp.StatusCode != http.StatusOK {
		t.Fatalf("serial query failed: %s", serialBody)
	}
	var serial QueryResponse
	if err := json.Unmarshal(serialBody, &serial); err != nil {
		t.Fatal(err)
	}

	const n = 8
	type outcome struct {
		xml string
		err error
	}
	results := make(chan outcome, n)
	for i := 0; i < n; i++ {
		go func() {
			resp, body := postJSON(t, ts.URL+"/query", QueryRequest{Query: dixq.XMarkQ8, Parallelism: 4})
			if resp.StatusCode != http.StatusOK {
				results <- outcome{err: fmt.Errorf("status %d: %s", resp.StatusCode, body)}
				return
			}
			var out QueryResponse
			if err := json.Unmarshal(body, &out); err != nil {
				results <- outcome{err: err}
				return
			}
			results <- outcome{xml: out.XML}
		}()
	}
	for i := 0; i < n; i++ {
		got := <-results
		if got.err != nil {
			t.Fatal(got.err)
		}
		if got.xml != serial.XML {
			t.Fatal("parallel result diverged from the serial result")
		}
	}
	if hw := exec.HighWater(); hw > budget {
		t.Errorf("extra workers peaked at %d, over the process budget %d", hw, budget)
	}
	if in := exec.InFlight(); in != 0 {
		t.Errorf("%d worker slots still held after all queries finished", in)
	}
	if g := obs.ParallelWorkersActive.Value(); g != 0 {
		t.Errorf("dixq_parallel_workers_active = %d after all queries finished, want 0", g)
	}
}

func TestPlanCache(t *testing.T) {
	ts := testServer(t, Config{})
	query := `for $x in document("auction.xml")/site/regions return count($x/*)`
	var last StatsJSON
	for i := 0; i < 3; i++ {
		resp, body := postJSON(t, ts.URL+"/query", QueryRequest{Query: query})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		var out QueryResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if out.Stats == nil {
			t.Fatal("missing stats")
		}
		last = *out.Stats
	}
	if last.PlanCacheMiss != 1 || last.PlanCacheHits != 2 {
		t.Fatalf("want 1 miss / 2 hits, got %d / %d", last.PlanCacheMiss, last.PlanCacheHits)
	}
	// A different engine is a different cache key.
	resp, body := postJSON(t, ts.URL+"/query", QueryRequest{Query: query, Engine: "di-nlj"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out QueryResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Stats.PlanCacheMiss != 2 {
		t.Fatalf("want 2 misses after engine change, got %d", out.Stats.PlanCacheMiss)
	}
}

// TestPlanCacheKeyIncludesOptions is the regression test for the cache
// key: requests that differ in any plan-affecting option must occupy
// distinct cache slots, while requests that differ only in a
// non-canonical spelling of the same option (parallelism 0 and -1 both
// resolve to the machine default) must share one. The explicit
// parallelism values are derived from the resolved default so the test
// holds at any GOMAXPROCS (the CI matrix runs -cpu=1,4).
func TestPlanCacheKeyIncludesOptions(t *testing.T) {
	def := exec.Resolve(0)
	base := QueryRequest{Query: "q", Engine: "di-msj"}
	distinct := []QueryRequest{
		base,
		{Query: "q", Engine: "di-nlj"},
		{Query: "q", Engine: "di-msj", LegacyKeys: true},
		{Query: "q", Engine: "di-msj", NoPipeline: true},
		{Query: "q", Engine: "di-msj", Parallelism: def + 1},
		{Query: "q", Engine: "di-msj", Parallelism: def + 2},
	}
	seen := map[string]int{}
	for i, req := range distinct {
		key := planKey(&req, Config{}, 0)
		if j, dup := seen[key]; dup {
			t.Errorf("requests %d and %d share cache key %q", j, i, key)
		}
		seen[key] = i
	}
	// Non-canonical spellings of the machine default collapse onto it.
	for _, par := range []int{-1, 0, def} {
		req := base
		req.Parallelism = par
		if got, want := planKey(&req, Config{}, 0), planKey(&base, Config{}, 0); got != want {
			t.Errorf("parallelism %d key = %q, want the default key %q", par, got, want)
		}
	}
	// The server default fills an unset request value: an unset request
	// under Config{Parallelism: n} shares the slot of an explicit n.
	explicit := base
	explicit.Parallelism = def + 1
	if got, want := planKey(&base, Config{Parallelism: def + 1}, 0), planKey(&explicit, Config{}, 0); got != want {
		t.Errorf("config-default key = %q, want the explicit key %q", got, want)
	}
	// ... and an explicit request value overrides the server default.
	if got, want := planKey(&explicit, Config{Parallelism: def + 2}, 0), planKey(&explicit, Config{}, 0); got != want {
		t.Errorf("request override key = %q, want %q", got, want)
	}
	// The per-tenant worker cap clamps the resolved parallelism, so a
	// capped configuration keys differently from an uncapped one.
	if got, want := planKey(&explicit, Config{TenantWorkers: 1}, 0), planKey(&explicit, Config{}, 0); got == want {
		t.Errorf("tenant worker cap kept cache key %q", got)
	}
	// A new catalog version — any document load, update, drop, reindex or
	// stats refresh — must not reuse plans compiled against the old
	// snapshot.
	if got, want := planKey(&base, Config{}, 1), planKey(&base, Config{}, 0); got == want {
		t.Errorf("catalog version change kept cache key %q", got)
	}
	// Analyze and Indent shape the response, not the plan.
	for _, req := range []QueryRequest{
		{Query: "q", Engine: "di-msj", Analyze: true},
		{Query: "q", Engine: "di-msj", Indent: true},
	} {
		if got, want := planKey(&req, Config{}, 0), planKey(&base, Config{}, 0); got != want {
			t.Errorf("response-only option changed the key: %q vs %q", got, want)
		}
	}
}

// TestPlanCacheOptionsEndToEnd drives the regression through the HTTP
// layer: the same query under different options must miss the cache.
func TestPlanCacheOptionsEndToEnd(t *testing.T) {
	ts := testServer(t, Config{})
	query := `for $x in document("auction.xml")/site/regions return count($x/*)`
	run := func(req QueryRequest) StatsJSON {
		t.Helper()
		resp, body := postJSON(t, ts.URL+"/query", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		var out QueryResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if out.Stats == nil {
			t.Fatal("missing stats")
		}
		return *out.Stats
	}
	run(QueryRequest{Query: query})
	if st := run(QueryRequest{Query: query, NoPipeline: true}); st.PlanCacheMiss != 2 {
		t.Fatalf("no_pipeline request should miss: %d misses", st.PlanCacheMiss)
	}
	if st := run(QueryRequest{Query: query, LegacyKeys: true}); st.PlanCacheMiss != 3 {
		t.Fatalf("legacy_keys request should miss: %d misses", st.PlanCacheMiss)
	}
	if st := run(QueryRequest{Query: query}); st.PlanCacheHits != 1 {
		t.Fatalf("repeat of the first request should hit: %d hits", st.PlanCacheHits)
	}
}

// TestExplainAnalyze exercises the analyze form of POST /explain: the
// response must carry per-operator actuals whose times sum to the
// reported total (the operator times are exclusive by construction).
func TestExplainAnalyze(t *testing.T) {
	ts := testServer(t, Config{})
	for _, engine := range []string{"", "di-nlj"} {
		resp, body := postJSON(t, ts.URL+"/explain", QueryRequest{
			Query: dixq.XMarkQ8, Engine: engine, Analyze: true,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("engine %q: status %d: %s", engine, resp.StatusCode, body)
		}
		var out ExplainResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if out.AnalyzedPlan == "" || !strings.Contains(out.AnalyzedPlan, "rows=") {
			t.Fatalf("engine %q: analyzed plan missing actuals: %q", engine, out.AnalyzedPlan)
		}
		if len(out.Operators) == 0 {
			t.Fatalf("engine %q: no operators", engine)
		}
		var sum float64
		executed := 0
		for _, op := range out.Operators {
			sum += op.TimeMS
			if op.Calls > 0 {
				executed++
			}
		}
		if sum != out.TotalMS {
			t.Errorf("engine %q: operator times sum to %v, total_ms = %v", engine, sum, out.TotalMS)
		}
		if executed == 0 {
			t.Errorf("engine %q: no operator recorded a call", engine)
		}
	}
	// Analyze is a DI-engine feature.
	resp, _ := postJSON(t, ts.URL+"/explain", QueryRequest{
		Query: dixq.XMarkQ8, Engine: "interp", Analyze: true,
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("interp analyze status = %d", resp.StatusCode)
	}
}

func TestPlanCacheEviction(t *testing.T) {
	c := newPlanCache(2)
	q := &dixq.Query{}
	c.put("a", q)
	c.put("b", q)
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted early")
	}
	c.put("c", q) // evicts b (least recently used after a's promotion)
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived past capacity")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a lost")
	}
	if _, ok := c.get("c"); !ok {
		t.Fatal("c lost")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d", c.len())
	}
	hits, misses := c.counts()
	if hits != 3 || misses != 1 {
		t.Fatalf("counts = %d/%d", hits, misses)
	}
	// Disabled cache: all operations are no-ops.
	var off *planCache
	off.put("x", q)
	if _, ok := off.get("x"); ok {
		t.Fatal("disabled cache returned a plan")
	}
}

// TestStatsEpochEvictsPlans is the regression test for statistics-driven
// plan-cache invalidation: recollecting the catalog's statistics bumps
// the stats epoch — with the index epoch untouched — and cached plans
// stop being served, because a plan the cost-based optimizer shaped
// around the old statistics may no longer be the one it would build.
// Reloading a document must bump the stats epoch too (alongside the
// index epoch), so reloads invalidate on both axes.
func TestStatsEpochEvictsPlans(t *testing.T) {
	doc, err := dixq.ParseDocument(dixq.XMarkFigure1)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(map[string]*dixq.Document{"auction.xml": doc}, Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	req := QueryRequest{
		Query: `for $p in document("auction.xml")/site/people/person
		        return for $q in document("auction.xml")/site/people/person
		        where $p = $q return $q/name/text()`,
		Engine: "di-opt",
	}
	run := func() {
		t.Helper()
		resp, body := postJSON(t, ts.URL+"/query", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
	}
	run() // compile + cache
	run() // served from cache
	hits, misses := srv.plans.counts()
	if hits != 1 || misses != 1 {
		t.Fatalf("warmup hits/misses = %d/%d, want 1/1", hits, misses)
	}

	idxBefore, statsBefore := srv.cat.IndexEpoch(), srv.cat.StatsEpoch()
	srv.cat.RefreshStats()
	if got := srv.cat.IndexEpoch(); got != idxBefore {
		t.Fatalf("RefreshStats moved the index epoch %d -> %d", idxBefore, got)
	}
	if got := srv.cat.StatsEpoch(); got == statsBefore {
		t.Fatalf("RefreshStats kept stats epoch %d", got)
	}
	run() // must recompile: the cached plan is keyed to the old stats epoch
	if _, misses = srv.plans.counts(); misses != 2 {
		t.Fatalf("misses after RefreshStats = %d, want 2 (stale plan served?)", misses)
	}

	statsBefore = srv.cat.StatsEpoch()
	srv.cat.Add("auction.xml", doc)
	if got := srv.cat.StatsEpoch(); got == statsBefore {
		t.Fatalf("document reload kept stats epoch %d", got)
	}
	run()
	if _, misses = srv.plans.counts(); misses != 3 {
		t.Fatalf("misses after reload = %d, want 3", misses)
	}
}
