package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"dixq"
)

// jsonBody marshals v for a request body.
func jsonBody(t *testing.T, v any) *bytes.Reader {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(data)
}

// admitOK admits and fails the test on refusal.
func admitOK(t *testing.T, a *admitter, tenant string) func() {
	t.Helper()
	release, aerr := a.admit(tenant)
	if aerr != nil {
		t.Fatalf("admit(%q) refused: %+v", tenant, aerr)
	}
	return release
}

func TestAdmitterUnlimited(t *testing.T) {
	a := newAdmitter(Config{})
	var releases []func()
	for i := 0; i < 50; i++ {
		releases = append(releases, admitOK(t, a, "default"))
	}
	for _, r := range releases {
		r()
	}
	if a.Peak() != 50 {
		t.Errorf("peak = %d, want 50", a.Peak())
	}
}

func TestAdmitterConcurrencyBound(t *testing.T) {
	// No queue: the third concurrent request is refused immediately.
	a := newAdmitter(Config{MaxConcurrent: 2, QueueDepth: -1})
	r1 := admitOK(t, a, "t")
	r2 := admitOK(t, a, "t")
	if _, aerr := a.admit("t"); aerr == nil {
		t.Fatal("third request admitted over MaxConcurrent=2")
	} else if aerr.status != http.StatusTooManyRequests || aerr.reason != "queue_full" {
		t.Fatalf("refusal = %+v", aerr)
	}
	r1()
	r3 := admitOK(t, a, "t")
	r3()
	r2()
	r2() // idempotent release must not free a second slot
	r1()
	got := admitOK(t, a, "t")
	got2 := admitOK(t, a, "t")
	got()
	got2()
	if a.Peak() != 2 {
		t.Errorf("peak = %d, want 2", a.Peak())
	}
}

func TestAdmitterQueueHandsOffSlot(t *testing.T) {
	a := newAdmitter(Config{MaxConcurrent: 1, QueueTimeout: 5 * time.Second})
	release := admitOK(t, a, "t")
	admitted := make(chan func(), 1)
	go func() {
		r, aerr := a.admit("t")
		if aerr != nil {
			admitted <- nil
			return
		}
		admitted <- r
	}()
	// The waiter must be queued, not admitted, until the slot frees.
	select {
	case <-admitted:
		t.Fatal("second request admitted while the slot was held")
	case <-time.After(50 * time.Millisecond):
	}
	release()
	select {
	case r := <-admitted:
		if r == nil {
			t.Fatal("queued request was refused after the slot freed")
		}
		r()
	case <-time.After(2 * time.Second):
		t.Fatal("queued request never admitted")
	}
}

func TestAdmitterQueueTimeout(t *testing.T) {
	a := newAdmitter(Config{MaxConcurrent: 1, QueueTimeout: 30 * time.Millisecond})
	release := admitOK(t, a, "t")
	defer release()
	start := time.Now()
	if _, aerr := a.admit("t"); aerr == nil {
		t.Fatal("request admitted past a held slot")
	} else if aerr.reason != "queue_timeout" || aerr.status != http.StatusTooManyRequests {
		t.Fatalf("refusal = %+v", aerr)
	}
	if waited := time.Since(start); waited < 30*time.Millisecond {
		t.Errorf("refused after %v, before the queue timeout", waited)
	}
}

func TestAdmitterTenantIsolation(t *testing.T) {
	a := newAdmitter(Config{TenantConcurrent: 1})
	rA := admitOK(t, a, "alice")
	// Alice is at her limit; Bob is unaffected.
	if _, aerr := a.admit("alice"); aerr == nil {
		t.Fatal("alice admitted over her concurrency limit")
	} else if aerr.reason != "tenant_concurrency" {
		t.Fatalf("refusal = %+v", aerr)
	}
	rB := admitOK(t, a, "bob")
	rB()
	rA()
	rA2 := admitOK(t, a, "alice")
	rA2()
}

func TestAdmitterTenantMemory(t *testing.T) {
	// Each admitted request reserves MemBudget (64) against the tenant's
	// 128-byte budget: two fit, the third is refused.
	a := newAdmitter(Config{MemBudget: 64, TenantMemBudget: 128})
	r1 := admitOK(t, a, "t")
	r2 := admitOK(t, a, "t")
	if _, aerr := a.admit("t"); aerr == nil {
		t.Fatal("third request admitted over the tenant memory budget")
	} else if aerr.reason != "tenant_memory" {
		t.Fatalf("refusal = %+v", aerr)
	}
	r1()
	r3 := admitOK(t, a, "t")
	r3()
	r2()
	// Full release must leave no tenant state behind.
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.tenants) != 0 {
		t.Errorf("tenant map not empty after release: %+v", a.tenants)
	}
}

func TestAdmitterDraining(t *testing.T) {
	a := newAdmitter(Config{})
	a.draining.Store(true)
	if _, aerr := a.admit("t"); aerr == nil {
		t.Fatal("request admitted while draining")
	} else if aerr.status != http.StatusServiceUnavailable || aerr.reason != "draining" {
		t.Fatalf("refusal = %+v", aerr)
	}
}

// TestAdmissionOverHTTP drives refusals end to end: a held execution
// slot turns the next request into a 429 with Retry-After, and releasing
// it restores service. The slot is held directly on the admitter, so the
// test is deterministic.
func TestAdmissionOverHTTP(t *testing.T) {
	doc, err := dixq.ParseDocument(dixq.XMarkFigure1)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(map[string]*dixq.Document{"auction.xml": doc},
		Config{MaxConcurrent: 1, QueueDepth: -1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	release, aerr := srv.adm.admit("holder")
	if aerr != nil {
		t.Fatalf("holding the slot: %+v", aerr)
	}
	resp, body := postJSON(t, ts.URL+"/query", QueryRequest{Query: dixq.XMarkQ8})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d (%s), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without a Retry-After header")
	}
	// Writes pass the same admission control.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/docs/auction.xml", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("DELETE status = %d, want 429", dresp.StatusCode)
	}
	// Read-only endpoints are never refused.
	gresp, err := http.Get(ts.URL + "/docs")
	if err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /docs status = %d while saturated", gresp.StatusCode)
	}

	release()
	resp, body = postJSON(t, ts.URL+"/query", QueryRequest{Query: dixq.XMarkQ8})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release status = %d (%s)", resp.StatusCode, body)
	}
}

// TestTenantIsolationOverHTTP: one tenant at its concurrency limit gets
// 429 while another tenant's identical request is served.
func TestTenantIsolationOverHTTP(t *testing.T) {
	doc, err := dixq.ParseDocument(dixq.XMarkFigure1)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(map[string]*dixq.Document{"auction.xml": doc}, Config{TenantConcurrent: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if aerr := srv.adm.reserveTenant("alice"); aerr != nil {
		t.Fatalf("reserving alice's slot: %+v", aerr)
	}
	defer srv.adm.unreserveTenant("alice")

	post := func(tenant string) int {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/query",
			jsonBody(t, QueryRequest{Query: dixq.XMarkQ8}))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Tenant", tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := post("alice"); got != http.StatusTooManyRequests {
		t.Errorf("alice status = %d, want 429", got)
	}
	if got := post("bob"); got != http.StatusOK {
		t.Errorf("bob status = %d, want 200", got)
	}
}

// TestDrainOverHTTP: Drain turns new requests into 503s while admitted
// work runs to completion.
func TestDrainOverHTTP(t *testing.T) {
	doc, err := dixq.ParseDocument(dixq.XMarkFigure1)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(map[string]*dixq.Document{"auction.xml": doc}, Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	release, aerr := srv.adm.admit("inflight")
	if aerr != nil {
		t.Fatal(aerr)
	}
	srv.Drain()
	resp, _ := postJSON(t, ts.URL+"/query", QueryRequest{Query: dixq.XMarkQ8})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status while draining = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without a Retry-After header")
	}
	release() // the in-flight request finishes normally
}

// TestAdmitterConcurrentStress hammers a small admitter from many
// goroutines and checks the invariants: the peak never exceeds the
// bound, and everything drains to zero.
func TestAdmitterConcurrentStress(t *testing.T) {
	const bound = 3
	a := newAdmitter(Config{MaxConcurrent: bound, QueueTimeout: 2 * time.Second, QueueDepth: 64})
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				release, aerr := a.admit("t")
				if aerr != nil {
					continue
				}
				release()
			}
		}()
	}
	wg.Wait()
	if p := a.Peak(); p > bound {
		t.Errorf("peak %d exceeded the bound %d", p, bound)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.active != 0 || a.queued != 0 || len(a.tenants) != 0 {
		t.Errorf("not drained: active=%d queued=%d tenants=%d", a.active, a.queued, len(a.tenants))
	}
}
