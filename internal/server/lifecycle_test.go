package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dixq"
)

// lifecycleServer builds a server with direct access to the *Server.
func lifecycleServer(t *testing.T, cfg Config, docs map[string]string) (*httptest.Server, *Server) {
	t.Helper()
	parsed := map[string]*dixq.Document{}
	for name, xml := range docs {
		d, err := dixq.ParseDocument(xml)
		if err != nil {
			t.Fatal(err)
		}
		parsed[name] = d
	}
	srv := New(parsed, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	return ts, srv
}

// do issues a method+body request and decodes the JSON response.
func do(t *testing.T, method, url, contentType string, body string, out any) *http.Response {
	t.Helper()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp
}

// TestDocumentLifecycle drives a document from birth to drop over HTTP:
// PUT creates (201), GET sees it, POST updates it structurally, PUT
// replaces (200), DELETE drops it, and every write advances the catalog
// version.
func TestDocumentLifecycle(t *testing.T) {
	ts, srv := lifecycleServer(t, Config{}, nil)

	var put DocResponse
	resp := do(t, http.MethodPut, ts.URL+"/docs/d.xml", "application/xml",
		`<r><a>1</a></r>`, &put)
	if resp.StatusCode != http.StatusCreated || !put.Created {
		t.Fatalf("create: %d %+v", resp.StatusCode, put)
	}
	if put.Nodes != 3 {
		t.Errorf("nodes = %d, want 3 (r, a, text)", put.Nodes)
	}

	var got DocGetResponse
	resp = do(t, http.MethodGet, ts.URL+"/docs/d.xml", "", "", &got)
	if resp.StatusCode != http.StatusOK || got.Name != "d.xml" || got.Nodes != 3 {
		t.Fatalf("get: %d %+v", resp.StatusCode, got)
	}

	// Structural update: append a child under the root.
	var upd DocResponse
	resp = do(t, http.MethodPost, ts.URL+"/docs/d.xml", "application/json",
		`{"op":"append-child","path":[0],"xml":"<b>2</b>"}`, &upd)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update: %d %+v", resp.StatusCode, upd)
	}
	if upd.Version <= put.Version {
		t.Errorf("update version %d did not advance past %d", upd.Version, put.Version)
	}
	if upd.Nodes != 5 {
		t.Errorf("post-update nodes = %d, want 5", upd.Nodes)
	}
	q, _ := postJSON(t, ts.URL+"/query", QueryRequest{Query: `document("d.xml")/r/b`})
	if q.StatusCode != http.StatusOK {
		t.Fatalf("query after update: %d", q.StatusCode)
	}

	// Replace.
	var rep DocResponse
	resp = do(t, http.MethodPut, ts.URL+"/docs/d.xml", "application/xml", `<r/>`, &rep)
	if resp.StatusCode != http.StatusOK || rep.Created {
		t.Fatalf("replace: %d %+v", resp.StatusCode, rep)
	}

	// Drop.
	var del DocResponse
	resp = do(t, http.MethodDelete, ts.URL+"/docs/d.xml", "", "", &del)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %d", resp.StatusCode)
	}
	if del.Version <= rep.Version {
		t.Errorf("delete version %d did not advance past %d", del.Version, rep.Version)
	}
	resp = do(t, http.MethodGet, ts.URL+"/docs/d.xml", "", "", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get after delete: %d, want 404", resp.StatusCode)
	}
	if v := srv.cat.Version(); v != del.Version {
		t.Errorf("catalog version %d, response said %d", v, del.Version)
	}
}

// TestDocLifecycleErrors: the malformed and missing cases.
func TestDocLifecycleErrors(t *testing.T) {
	ts, _ := lifecycleServer(t, Config{}, map[string]string{"d.xml": `<r><a/></r>`})
	cases := []struct {
		method, path, body string
		status             int
	}{
		{http.MethodPut, "/docs/bad.xml", `not xml <<<`, http.StatusBadRequest},
		{http.MethodPut, "/docs/empty.xml", ``, http.StatusBadRequest},
		{http.MethodPut, "/docs/f.xml?file=some.xml", ``, http.StatusBadRequest}, // no DocDir
		{http.MethodDelete, "/docs/ghost.xml", ``, http.StatusNotFound},
		{http.MethodPost, "/docs/ghost.xml", `{"op":"delete","path":[0]}`, http.StatusNotFound},
		{http.MethodPost, "/docs/d.xml", `{"op":"detonate","path":[0]}`, http.StatusBadRequest},
		{http.MethodPost, "/docs/d.xml", `{"op":"append-child","path":[0]}`, http.StatusBadRequest},      // no fragment
		{http.MethodPost, "/docs/d.xml", `{"op":"delete","path":[0,9]}`, http.StatusUnprocessableEntity}, // no such node
		{http.MethodPost, "/docs/d.xml", `{"op":"delete","path":[]}`, http.StatusUnprocessableEntity},
		{http.MethodPost, "/docs/d.xml", `{"op":"append-child","path":[0],"xml":"<<<"}`, http.StatusBadRequest},
		{http.MethodPost, "/docs/d.xml", `not json`, http.StatusBadRequest},
	}
	for _, tt := range cases {
		resp := do(t, tt.method, ts.URL+tt.path, "application/json", tt.body, nil)
		if resp.StatusCode != tt.status {
			t.Errorf("%s %s %q: status %d, want %d", tt.method, tt.path, tt.body, resp.StatusCode, tt.status)
		}
	}
}

// TestDocPutFromFile: PUT ?file= loads XML and .dixq stores from the
// configured directory, and path escapes are refused.
func TestDocPutFromFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "doc.xml"), []byte(`<r><a>7</a></r>`), 0o644); err != nil {
		t.Fatal(err)
	}
	stored, err := dixq.ParseDocument(`<s><b/></s>`)
	if err != nil {
		t.Fatal(err)
	}
	if err := stored.SaveEncoded(filepath.Join(dir, "doc.dixq")); err != nil {
		t.Fatal(err)
	}
	ts, _ := lifecycleServer(t, Config{DocDir: dir}, nil)

	var put DocResponse
	resp := do(t, http.MethodPut, ts.URL+"/docs/a.xml?file=doc.xml", "", "", &put)
	if resp.StatusCode != http.StatusCreated || put.Nodes != 3 {
		t.Fatalf("file load: %d %+v", resp.StatusCode, put)
	}
	resp = do(t, http.MethodPut, ts.URL+"/docs/b.xml?file=doc.dixq", "", "", &put)
	if resp.StatusCode != http.StatusCreated || put.Nodes != 2 {
		t.Fatalf("store load: %d %+v", resp.StatusCode, put)
	}
	for _, escape := range []string{"../secret.xml", "/etc/passwd", "a/../../b.xml"} {
		resp = do(t, http.MethodPut, ts.URL+"/docs/x.xml?file="+escape, "", "", nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("escape %q: status %d, want 400", escape, resp.StatusCode)
		}
	}
	resp = do(t, http.MethodPut, ts.URL+"/docs/x.xml?file=missing.xml", "", "", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing file: status %d, want 400", resp.StatusCode)
	}
}

// TestDropReloadNeverServesStalePlan is the plan-cache regression test
// for the document lifecycle: DELETE a document, reload the same name
// with different content, and the same query text must be re-planned
// against the new content — a version-blind cache would serve the plan
// (and in the worst case the optimizer shape) of the dropped document.
func TestDropReloadNeverServesStalePlan(t *testing.T) {
	ts, srv := lifecycleServer(t, Config{}, map[string]string{"d.xml": `<r><v>1</v></r>`})
	query := QueryRequest{Query: `document("d.xml")/r/v`}

	run := func(wantXML string) {
		t.Helper()
		resp, body := postJSON(t, ts.URL+"/query", query)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		var out QueryResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if out.XML != wantXML {
			t.Fatalf("result = %q, want %q", out.XML, wantXML)
		}
	}
	run(`<v>1</v>`) // compile + cache
	run(`<v>1</v>`) // cache hit
	hits, misses := srv.plans.counts()
	if hits != 1 || misses != 1 {
		t.Fatalf("warmup hits/misses = %d/%d, want 1/1", hits, misses)
	}

	if resp := do(t, http.MethodDelete, ts.URL+"/docs/d.xml", "", "", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %d", resp.StatusCode)
	}
	if resp := do(t, http.MethodPut, ts.URL+"/docs/d.xml", "application/xml",
		`<r><v>2</v></r>`, nil); resp.StatusCode != http.StatusCreated {
		t.Fatalf("reload: %d", resp.StatusCode)
	}

	run(`<v>2</v>`) // must see the new content, via a fresh compile
	if _, misses = srv.plans.counts(); misses != 2 {
		t.Fatalf("misses after drop+reload = %d, want 2 (stale plan served?)", misses)
	}

	// Structural updates invalidate the same way.
	if resp := do(t, http.MethodPost, ts.URL+"/docs/d.xml", "application/json",
		`{"op":"append-child","path":[0],"xml":"<v>3</v>"}`, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("update: %d", resp.StatusCode)
	}
	run(`<v>2</v><v>3</v>`)
	if _, misses = srv.plans.counts(); misses != 3 {
		t.Fatalf("misses after update = %d, want 3", misses)
	}
}

// TestBackgroundReindex: after an update the document serves from scans;
// the background reindexer restores index-backed plans without changing
// any answer.
func TestBackgroundReindex(t *testing.T) {
	ts, srv := lifecycleServer(t, Config{}, map[string]string{"d.xml": `<r><a>1</a></r>`})
	resp := do(t, http.MethodPost, ts.URL+"/docs/d.xml", "application/json",
		`{"op":"append-child","path":[0],"xml":"<a>2</a>"}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update: %d", resp.StatusCode)
	}
	// The reindexer runs asynchronously; Reindex directly is idempotent
	// with it, so the test does not race: one of the two rebuilds wins,
	// after which the snapshot must be indexed.
	srv.cat.Reindex("d.xml")
	snap := srv.cat.Snapshot()
	q, _ := postJSON(t, ts.URL+"/query", QueryRequest{Query: `document("d.xml")/r/a`})
	if q.StatusCode != http.StatusOK {
		t.Fatalf("query after reindex: %d", q.StatusCode)
	}
	if snap.Version() < 2 {
		t.Errorf("version = %d after add+update+reindex", snap.Version())
	}
}
