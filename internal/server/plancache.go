package server

import (
	"container/list"
	"fmt"
	"sync"

	"dixq"
	"dixq/internal/obs"
)

// planCache is an LRU of compiled query plans keyed by the request's
// canonicalized (query text, engine, options) tuple. Parsing and
// rewriting a query is pure, and a compiled dixq.Query is immutable and
// safe for concurrent reuse (every Run builds a fresh evaluator), so one
// cached plan can serve many requests. A nil *planCache is a valid
// disabled cache.
type planCache struct {
	mu           sync.Mutex
	cap          int
	ll           *list.List
	items        map[string]*list.Element
	hits, misses uint64
}

type planEntry struct {
	key string
	q   *dixq.Query
}

func newPlanCache(capacity int) *planCache {
	if capacity <= 0 {
		return nil
	}
	return &planCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// planKey builds the cache key for a request: the query text, the engine,
// every option that affects the plan or its execution strategy, and the
// version of the catalog snapshot the request pinned. The options are
// canonicalized first — the parallelism component is the fully resolved
// worker bound (request value, else server default, with 0 resolving to
// runtime.GOMAXPROCS(0), exactly as the executor resolves it) — so
// equivalent requests hit the same slot while requests differing in any
// effective knob never collide. (Before options were part of the key, a
// cached entry served requests whose options differed from the ones it
// was first compiled under.) The catalog version folds every document
// change into the key: loads, structural updates, drops, background
// reindexes and statistics refreshes each publish a fresh version, so a
// plan compiled against one snapshot — including one the cost-based
// optimizer shaped around since-recollected statistics, or one whose
// document was dropped and reloaded with different content — is never
// reused against another.
func planKey(req *QueryRequest, cfg Config, version uint64) string {
	return fmt.Sprintf("%s\x00%s\x00legacy=%t\x00nopipe=%t\x00par=%d\x00cat=%d",
		req.Query, req.Engine, req.LegacyKeys, req.NoPipeline, effectiveParallelism(req, cfg), version)
}

// get returns the cached plan for key and promotes it to most-recent.
func (c *planCache) get(key string) (*dixq.Query, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		obs.PlanCacheHits.Inc()
		return el.Value.(*planEntry).q, true
	}
	c.misses++
	obs.PlanCacheMisses.Inc()
	return nil, false
}

// put inserts a plan, evicting the least recently used entry past capacity.
func (c *planCache) put(key string, q *dixq.Query) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*planEntry).q = q
		return
	}
	c.items[key] = c.ll.PushFront(&planEntry{key: key, q: q})
	for c.ll.Len() > c.cap {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.items, el.Value.(*planEntry).key)
	}
}

// counts returns the cumulative hit/miss counters.
func (c *planCache) counts() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// len returns the number of cached plans.
func (c *planCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
