// Package server exposes a live document catalog over HTTP: documents
// load at startup or over PUT /docs/{name} (XML or pre-shredded .dixq
// stores), structural updates and drops publish new catalog snapshot
// versions, and XQuery POSTs answer from the snapshot they pinned at
// admission — readers never block on writers. A bounded admission queue
// with per-tenant budgets turns overload into fast 429s. It is the thin
// serving layer behind cmd/dixqd.
//
// Beyond query answering, the server is the process's observability
// surface (docs/API.md is the full HTTP reference): GET /metrics serves
// the obs.Default registry in the Prometheus text format, and GET
// /debug/traces returns the most recent sampled query traces — parse,
// plan-cache and execute spans, with per-plan-operator child spans for
// the DI engines, reusing the same exclusive-time machinery as POST
// /explain {"analyze":true}.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"dixq"
	"dixq/internal/exec"
	"dixq/internal/obs"
)

// Config bounds query execution for every request.
type Config struct {
	// Timeout per query; zero means none.
	Timeout time.Duration
	// MaxTuples per query for the DI engines; zero means none.
	MaxTuples int64
	// MemBudget bounds the accounted in-memory sort footprint per query for
	// the DI engines, in bytes; larger sorts spill runs to SpillDir instead
	// of aborting. Zero means unbounded.
	MemBudget int64
	// SpillDir is where external-sort runs are written under MemBudget;
	// empty means the OS temp directory.
	SpillDir string
	// Parallelism is the per-query worker bound applied when a request
	// leaves its parallelism field 0: it resolves like dixq.Options
	// (0 → runtime.GOMAXPROCS(0), 1 → serial, larger → that many
	// workers). Whatever each query requests, the workers of all
	// concurrent queries are drawn from one process-wide budget (package
	// exec), so total parallel workers never exceed that budget.
	Parallelism int
	// PlanCacheSize caps the LRU cache of compiled query plans, keyed by
	// (query text, engine). 0 means the default of 128; negative disables
	// caching.
	PlanCacheSize int
	// TraceSample samples 1 in every N POST /query requests into the trace
	// ring buffer served by GET /debug/traces. 0 means the default of
	// 64; negative disables tracing. Sampled DI-engine queries run with
	// per-operator instrumentation, which costs a memory-stats read per
	// plan-node boundary — that is the sampling trade-off.
	TraceSample int
	// TraceBufferSize caps the trace ring buffer; 0 means the default of
	// 128. The buffer keeps the most recent traces, oldest overwritten.
	TraceBufferSize int
	// MaxConcurrent bounds the requests (queries and document writes)
	// executing simultaneously; excess requests wait in a bounded
	// admission queue and overflow gets 429 + Retry-After. 0 means
	// unlimited (no admission queue). This layers on the process-wide
	// exec worker budget: that budget bounds the workers admitted
	// queries draw, this bounds how many requests run at all.
	MaxConcurrent int
	// QueueDepth bounds the requests waiting for an execution slot when
	// MaxConcurrent is set: 0 means the default of 64, negative disables
	// queueing (a busy server rejects immediately).
	QueueDepth int
	// QueueTimeout bounds the time a request may wait in the admission
	// queue; 0 means the default of 2s.
	QueueTimeout time.Duration
	// TenantConcurrent bounds the concurrently admitted requests of each
	// tenant (the X-Tenant request header; absent means the shared
	// "default" tenant). 0 means unlimited.
	TenantConcurrent int
	// TenantMemBudget bounds the summed memory reservations of a
	// tenant's admitted requests, in bytes; each admitted request
	// reserves MemBudget (its per-query sort budget). 0 means unlimited;
	// it only binds when MemBudget is set.
	TenantMemBudget int64
	// TenantWorkers caps the effective per-query parallelism of every
	// tenant's requests, under the process-wide exec budget. 0 means no
	// extra cap.
	TenantWorkers int
	// DocDir, when set, permits PUT /docs/{name}?file=relative-path to
	// load .xml or .dixq files from this directory. Empty disables
	// server-side file loading.
	DocDir string
	// NoReindex disables the background reindexer that re-derives a
	// document's structural index and statistics after updates; plans
	// over updated documents then stay scan-backed until Reindex is
	// called on the catalog directly.
	NoReindex bool
}

// defaultPlanCacheSize is the plan-cache capacity when Config leaves it 0.
const defaultPlanCacheSize = 128

// defaultTraceSample is the 1-in-N trace sampling rate when Config leaves
// TraceSample 0.
const defaultTraceSample = 64

// traceQueryLimit bounds the query text stored per trace, so the ring
// buffer's footprint stays small regardless of request sizes.
const traceQueryLimit = 2048

// Server answers queries and document writes against a live, versioned
// catalog. It is safe for concurrent use: the catalog publishes
// immutable snapshots (each request pins one at admission, so readers
// never block on writers), the engines share nothing per run, the plan
// cache is internally locked, and the trace buffer and sampler are
// atomic/locked.
type Server struct {
	cat     *dixq.Catalog
	cfg     Config
	plans   *planCache
	sampler *obs.Sampler
	traces  *obs.TraceBuffer
	adm     *admitter
	reindex *reindexer
}

// DocInfo describes one loaded document.
type DocInfo struct {
	Name  string `json:"name"`
	Nodes int    `json:"nodes"`
	Depth int    `json:"depth"`
}

// New builds a server over named documents (the initial catalog; more
// can be loaded, updated and dropped over HTTP).
func New(docs map[string]*dixq.Document, cfg Config) *Server {
	cat := dixq.NewCatalog()
	size := cfg.PlanCacheSize
	if size == 0 {
		size = defaultPlanCacheSize
	}
	every := cfg.TraceSample
	if every == 0 {
		every = defaultTraceSample
	}
	if every < 0 {
		every = 0 // NewSampler returns the never-sampling nil sampler
	}
	s := &Server{
		cat:     cat,
		cfg:     cfg,
		plans:   newPlanCache(size),
		sampler: obs.NewSampler(every),
		traces:  obs.NewTraceBuffer(cfg.TraceBufferSize),
		adm:     newAdmitter(cfg),
	}
	names := make([]string, 0, len(docs))
	for name := range docs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		cat.Add(name, docs[name])
	}
	if !cfg.NoReindex {
		s.reindex = newReindexer(cat)
	}
	return s
}

// Catalog returns the server's live catalog, for embedding callers that
// load or mutate documents programmatically alongside the HTTP surface.
func (s *Server) Catalog() *dixq.Catalog { return s.cat }

// Drain puts the server into draining mode: every subsequent request is
// refused with 503 + Retry-After while already-admitted requests run to
// completion. cmd/dixqd calls this on SIGTERM before shutting the
// listener down.
func (s *Server) Drain() { s.adm.draining.Store(true) }

// PeakConcurrent reports the high-water mark of concurrently admitted
// requests — under a MaxConcurrent bound it can never exceed that bound
// (the mixed-load benchmark asserts exactly this).
func (s *Server) PeakConcurrent() int { return s.adm.Peak() }

// Close stops the background reindexer. The HTTP handler remains usable;
// updated documents then stay scan-backed until reindexed directly.
func (s *Server) Close() {
	if s.reindex != nil {
		s.reindex.close()
		s.reindex = nil
	}
}

// QueryRequest is the POST /query and POST /explain body.
type QueryRequest struct {
	// Query is the XQuery text.
	Query string `json:"query"`
	// Engine selects the evaluation strategy: "di-opt" (the cost-based
	// default), "di-msj", "di-nlj", "interp", or "generic-sql".
	Engine string `json:"engine,omitempty"`
	// Indent pretty-prints the result XML.
	Indent bool `json:"indent,omitempty"`
	// Analyze (POST /explain, DI engines) executes the query and returns
	// the plan annotated with per-operator actuals instead of the static
	// description.
	Analyze bool `json:"analyze,omitempty"`
	// LegacyKeys selects the per-key-allocation operator implementations
	// (DI engines).
	LegacyKeys bool `json:"legacy_keys,omitempty"`
	// NoPipeline disables streaming fusion of path-operator chains (DI
	// engines).
	NoPipeline bool `json:"no_pipeline,omitempty"`
	// Parallelism bounds the query's intra-query workers (DI engines):
	// 1 means serial, larger values bound the workers directly, and 0
	// falls back to the server's configured default (which itself
	// resolves 0 to runtime.GOMAXPROCS(0)). Results are identical at
	// any setting.
	Parallelism int `json:"parallelism,omitempty"`
}

// effectiveParallelism resolves the worker bound for a request: an
// explicit request value wins, 0 falls back to the server default, the
// canonical resolution (<= 0 → runtime.GOMAXPROCS(0)) applies, and the
// per-tenant worker cap clamps last — the same resolution the executor
// performs, so the value is also usable as a cache-key component and a
// trace attribute.
func effectiveParallelism(req *QueryRequest, cfg Config) int {
	par := req.Parallelism
	if par == 0 {
		par = cfg.Parallelism
	}
	par = exec.Resolve(par)
	if cfg.TenantWorkers > 0 && par > cfg.TenantWorkers {
		par = cfg.TenantWorkers
	}
	return par
}

// options maps the request's engine knobs onto dixq.Options.
func (req *QueryRequest) options(engine dixq.Engine, cfg Config) *dixq.Options {
	return &dixq.Options{
		Engine:      engine,
		Timeout:     cfg.Timeout,
		MaxTuples:   cfg.MaxTuples,
		MemBudget:   cfg.MemBudget,
		SpillDir:    cfg.SpillDir,
		LegacyKeys:  req.LegacyKeys,
		NoPipeline:  req.NoPipeline,
		Parallelism: effectiveParallelism(req, cfg),
	}
}

// QueryResponse is the POST /query success body.
type QueryResponse struct {
	XML       string     `json:"xml"`
	Trees     int        `json:"trees"`
	ElapsedMS float64    `json:"elapsed_ms"`
	Stats     *StatsJSON `json:"stats,omitempty"`
}

// StatsJSON is the Figure 10 phase breakdown for DI engine runs, plus the
// server's cumulative plan-cache counters.
type StatsJSON struct {
	PathsMS        float64 `json:"paths_ms"`
	JoinMS         float64 `json:"join_ms"`
	ConstructionMS float64 `json:"construction_ms"`
	MergeJoins     int     `json:"merge_joins"`
	NestedLoops    int     `json:"nested_loops"`
	EmbeddedTuples int64   `json:"embedded_tuples"`
	SpilledRuns    int64   `json:"spilled_runs"`
	SpilledBytes   int64   `json:"spilled_bytes"`
	PlanCacheHits  uint64  `json:"plan_cache_hits"`
	PlanCacheMiss  uint64  `json:"plan_cache_misses"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// TracesResponse is the GET /debug/traces body.
type TracesResponse struct {
	// SampleEvery is the configured 1-in-N sampling rate (0 when tracing
	// is disabled).
	SampleEvery int `json:"sample_every"`
	// Traces are the most recent sampled queries, newest first.
	Traces []obs.Trace `json:"traces"`
}

// Handler returns the HTTP routes:
//
//	GET    /healthz       liveness (never queued or refused)
//	GET    /docs          the loaded documents + catalog version
//	GET    /docs/{name}   one document's info
//	PUT    /docs/{name}   load or replace a document (XML body, or ?file=)
//	POST   /docs/{name}   apply a structural update (UpdateRequest)
//	DELETE /docs/{name}   drop a document
//	GET    /metrics       Prometheus text-format metrics (obs.Default)
//	GET    /debug/traces  recent sampled query and catalog traces (?n=K)
//	POST   /query         run a query (QueryRequest -> QueryResponse)
//	POST   /explain       describe the plan for a query
//	POST   /sql           return the SQL translation of a query
//
// Queries and document writes pass admission control (429 + Retry-After
// on overload, 503 while draining); the read-only endpoints do not.
// Every error body is JSON ({"error": ...}): unknown paths get 404,
// wrong-method hits on registered paths get 405 with an Allow header.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	metrics := obs.Default.Handler()
	type route struct {
		method string
		h      http.HandlerFunc
	}
	paths := []struct {
		path   string
		routes []route
	}{
		{"/healthz", []route{{"GET", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			w.WriteHeader(http.StatusOK)
			fmt.Fprintln(w, "ok")
		}}}},
		{"/docs", []route{{"GET", s.handleDocs}}},
		{"/docs/{name}", []route{
			{"GET", s.handleDocGet},
			{"PUT", s.admitted(s.handleDocPut)},
			{"POST", s.admitted(s.handleDocUpdate)},
			{"DELETE", s.admitted(s.handleDocDelete)},
		}},
		{"/metrics", []route{{"GET", metrics.ServeHTTP}}},
		{"/debug/traces", []route{{"GET", s.handleTraces}}},
		{"/query", []route{{"POST", s.admitted(s.handleQuery)}}},
		{"/explain", []route{{"POST", s.admitted(s.handleExplain)}}},
		{"/sql", []route{{"POST", s.admitted(s.handleSQL)}}},
	}
	for _, p := range paths {
		allow := make([]string, 0, len(p.routes))
		for _, rt := range p.routes {
			mux.HandleFunc(rt.method+" "+p.path, rt.h)
			allow = append(allow, rt.method)
		}
		// The method-less pattern catches every other verb on the same
		// path: a JSON 405 with Allow, instead of the mux's plain-text
		// default.
		mux.HandleFunc(p.path, methodNotAllowed(strings.Join(allow, ", ")))
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "no such endpoint: " + r.URL.Path})
	})
	return mux
}

// admitted wraps a handler with admission control: the request passes the
// bounded queue and its tenant's budgets before the handler runs, and the
// slot is released when the handler returns. Refusals are 429 (or 503
// while draining) with a Retry-After hint.
func (s *Server) admitted(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		release, aerr := s.adm.admit(tenantOf(r))
		if aerr != nil {
			obs.AdmissionRejections.With(aerr.reason).Inc()
			w.Header().Set("Retry-After", strconv.Itoa(aerr.retryAfter))
			writeJSON(w, aerr.status, errorResponse{Error: aerr.msg})
			return
		}
		defer release()
		h(w, r)
	}
}

// methodNotAllowed answers a wrong-method hit on a registered route.
func methodNotAllowed(allow string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", allow)
		writeJSON(w, http.StatusMethodNotAllowed,
			errorResponse{Error: fmt.Sprintf("method %s not allowed on %s (allow: %s)", r.Method, r.URL.Path, allow)})
	}
}

// decodeInfo reports what decode did, for trace spans.
type decodeInfo struct {
	// parseNS is the parse+compile time (0 on a cache hit).
	parseNS int64
	// cacheHit reports whether the compiled plan came from the cache.
	cacheHit bool
}

// decode parses the request body and resolves the compiled plan through
// the cache. version is the pinned catalog snapshot's version: the cache
// key includes it, so a plan compiled against one snapshot can never
// serve a request pinned to a catalog that has since changed.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, version uint64) (*QueryRequest, *dixq.Query, decodeInfo, bool) {
	var info decodeInfo
	var req QueryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return nil, nil, info, false
	}
	if req.Query == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing query"})
		return nil, nil, info, false
	}
	key := planKey(&req, s.cfg, version)
	if q, ok := s.plans.get(key); ok {
		info.cacheHit = true
		return &req, q, info, true
	}
	start := time.Now()
	q, err := dixq.ParseQuery(req.Query)
	info.parseNS = int64(time.Since(start))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return nil, nil, info, false
	}
	s.plans.put(key, q)
	return &req, q, info, true
}

// engineLabel is the canonical metric/trace label of an engine.
func engineLabel(e dixq.Engine) string {
	switch e {
	case dixq.CostBased:
		return "di-opt"
	case dixq.MergeJoin:
		return "di-msj"
	case dixq.NestedLoop:
		return "di-nlj"
	case dixq.Interpreter:
		return "interp"
	case dixq.GenericSQL:
		return "generic-sql"
	}
	return "unknown"
}

// truncateQuery bounds the query text stored in a trace.
func truncateQuery(q string) string {
	if len(q) <= traceQueryLimit {
		return q
	}
	return q[:traceQueryLimit] + "…"
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	obs.ActiveQueries.Inc()
	start := time.Now()
	outcome, engine := "error", "unknown"
	var tr *obs.Trace
	if s.sampler.Sample() {
		tr = &obs.Trace{StartUnixNS: start.UnixNano()}
	}
	defer func() {
		obs.ActiveQueries.Dec()
		obs.QueryDuration.Observe(time.Since(start))
		obs.Queries.With(engine, outcome).Inc()
		if tr != nil {
			tr.Engine = engine
			tr.Outcome = outcome
			tr.DurationNS = int64(time.Since(start))
			s.traces.Add(*tr)
			obs.TracesSampled.Inc()
		}
	}()

	// Pin the catalog snapshot: everything below — plan-cache key,
	// compilation, execution — sees exactly this version, however many
	// writes publish meanwhile.
	snap := s.cat.Snapshot()
	obs.SnapshotsPinned.Inc()
	defer obs.SnapshotsPinned.Dec()
	req, q, info, ok := s.decode(w, r, snap.Version())
	if !ok {
		outcome = "bad_request"
		return
	}
	if tr != nil {
		tr.Query = truncateQuery(req.Query)
		if !info.cacheHit {
			tr.Spans = append(tr.Spans, obs.Span{Name: "parse-compile", DurationNS: info.parseNS})
		}
		tr.Spans = append(tr.Spans, obs.Span{
			Name:  "plan-cache",
			Attrs: map[string]string{"hit": strconv.FormatBool(info.cacheHit)},
		})
	}
	eng, err := parseEngine(req.Engine)
	if err != nil {
		outcome = "bad_request"
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	engine = engineLabel(eng)

	execStart := time.Now()
	var res *dixq.Result
	var ops []dixq.OperatorStat
	if tr != nil && (eng == dixq.CostBased || eng == dixq.MergeJoin || eng == dixq.NestedLoop) {
		// A sampled DI query runs instrumented, so the trace carries one
		// child span per plan operator — the same exclusive-time actuals
		// POST /explain {"analyze":true} reports.
		res, ops, err = q.RunAnalyzed(snap, req.options(eng, s.cfg))
	} else {
		res, err = q.Run(snap, req.options(eng, s.cfg))
	}
	if tr != nil {
		span := obs.Span{
			Name:       "execute",
			DurationNS: int64(time.Since(execStart)),
			Attrs: map[string]string{
				"parallel_workers": strconv.Itoa(effectiveParallelism(req, s.cfg)),
			},
		}
		for _, op := range ops {
			span.Children = append(span.Children, obs.Span{
				Name:       op.Op,
				DurationNS: int64(op.Time),
				Calls:      op.Calls,
				Rows:       op.Rows,
				Batches:    op.Batches,
				Bytes:      op.Bytes,
				Spilled:    op.Spilled,
				Skipped:    op.Skipped,
				Workers:    op.Workers,
			})
		}
		if err != nil {
			span.Attrs["error"] = err.Error()
		}
		tr.Spans = append(tr.Spans, span)
	}
	if err != nil {
		status := http.StatusUnprocessableEntity
		if errors.Is(err, dixq.ErrBudgetExceeded) {
			status = http.StatusGatewayTimeout
			outcome = "budget"
		}
		writeJSON(w, status, errorResponse{Error: err.Error()})
		return
	}
	outcome = "ok"
	out := QueryResponse{
		XML:       res.XML(),
		Trees:     res.Document().Trees(),
		ElapsedMS: float64(res.Elapsed.Microseconds()) / 1000,
	}
	if req.Indent {
		out.XML = res.Document().IndentedXML()
	}
	if st := res.Stats; st != nil {
		hits, misses := s.plans.counts()
		out.Stats = &StatsJSON{
			PathsMS:        ms(st.Paths),
			JoinMS:         ms(st.Join),
			ConstructionMS: ms(st.Construction),
			MergeJoins:     st.MergeJoins,
			NestedLoops:    st.NestedLoops,
			EmbeddedTuples: st.EmbeddedTuples,
			SpilledRuns:    st.SpilledRuns,
			SpilledBytes:   st.SpilledBytes,
			PlanCacheHits:  hits,
			PlanCacheMiss:  misses,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	n := 0
	if v := r.URL.Query().Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 0 {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad n parameter: " + v})
			return
		}
		n = parsed
	}
	every := 0
	if s.sampler != nil {
		every = s.cfg.TraceSample
		if every == 0 {
			every = defaultTraceSample
		}
	}
	writeJSON(w, http.StatusOK, TracesResponse{SampleEvery: every, Traces: s.traces.Last(n)})
}

// ExplainResponse is the POST /explain success body. Plan and Core are
// always present; the remaining fields are filled in analyze mode, where
// the query is executed and the per-operator actuals are reported.
type ExplainResponse struct {
	Plan string `json:"plan"`
	Core string `json:"core"`
	// Optimizer is the cost-based optimizer's report — join graph,
	// estimates, and per-loop decisions with both candidates' costs —
	// present when the requested engine is di-opt (the default).
	Optimizer *dixq.OptimizerReport `json:"optimizer,omitempty"`
	// AnalyzedPlan is the executed physical plan annotated with each
	// operator's actuals.
	AnalyzedPlan string `json:"analyzed_plan,omitempty"`
	// Operators flattens the same actuals in plan preorder. The times are
	// exclusive, so they sum to TotalMS.
	Operators []OperatorJSON `json:"operators,omitempty"`
	// TotalMS is the run's total evaluation time: the sum of the operator
	// times.
	TotalMS float64 `json:"total_ms,omitempty"`
}

// OperatorJSON is one operator's execution actuals.
type OperatorJSON struct {
	ID      int    `json:"id"`
	Op      string `json:"op"`
	Calls   int    `json:"calls"`
	Rows    int64  `json:"rows"`
	Batches int    `json:"batches"`
	Bytes   int64  `json:"bytes"`
	Spilled int64  `json:"spilled"`
	// Skipped is the number of relation tuples an index access path never
	// read (index seeks and dataguide-pruned chains).
	Skipped int64 `json:"skipped,omitempty"`
	Workers int   `json:"workers,omitempty"`
	// Partitions is the key-range partition count of the operator's
	// exchange or probe repartitioning (omitted for operators that never
	// partition).
	Partitions int     `json:"partitions,omitempty"`
	TimeMS     float64 `json:"time_ms"`
	Allocs     int64   `json:"allocs"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	snap := s.cat.Snapshot()
	obs.SnapshotsPinned.Inc()
	defer obs.SnapshotsPinned.Dec()
	req, q, _, ok := s.decode(w, r, snap.Version())
	if !ok {
		return
	}
	out := ExplainResponse{Plan: q.Explain(), Core: q.Core()}
	if eng, err := parseEngine(req.Engine); err == nil {
		// Nil for forced and non-DI engines: those runs bypass the
		// optimizer by design.
		out.Optimizer = q.OptimizerReport(snap, req.options(eng, s.cfg))
	}
	if req.Analyze {
		engine, err := parseEngine(req.Engine)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		text, ops, err := q.ExplainAnalyze(snap, req.options(engine, s.cfg))
		if err != nil {
			status := http.StatusUnprocessableEntity
			if errors.Is(err, dixq.ErrBudgetExceeded) {
				status = http.StatusGatewayTimeout
			}
			writeJSON(w, status, errorResponse{Error: err.Error()})
			return
		}
		out.AnalyzedPlan = text
		for _, op := range ops {
			j := OperatorJSON{
				ID:         op.ID,
				Op:         op.Op,
				Calls:      op.Calls,
				Rows:       op.Rows,
				Batches:    op.Batches,
				Bytes:      op.Bytes,
				Spilled:    op.Spilled,
				Skipped:    op.Skipped,
				Workers:    op.Workers,
				Partitions: op.Partitions,
				TimeMS:     ms(op.Time),
				Allocs:     op.Allocs,
			}
			out.Operators = append(out.Operators, j)
			// The reported total is the sum of the reported per-operator
			// values (not the raw durations), so the response is internally
			// consistent under the millisecond rounding.
			out.TotalMS += j.TimeMS
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSQL(w http.ResponseWriter, r *http.Request) {
	snap := s.cat.Snapshot()
	obs.SnapshotsPinned.Inc()
	defer obs.SnapshotsPinned.Dec()
	_, q, _, ok := s.decode(w, r, snap.Version())
	if !ok {
		return
	}
	sql, err := q.SQL(snap)
	if err != nil {
		status := http.StatusUnprocessableEntity
		if dixq.IsUnsupportedSQL(err) {
			status = http.StatusNotImplemented
		}
		writeJSON(w, status, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"sql": sql})
}

func parseEngine(name string) (dixq.Engine, error) {
	switch name {
	case "", "di-opt":
		return dixq.CostBased, nil
	case "di-msj":
		return dixq.MergeJoin, nil
	case "di-nlj":
		return dixq.NestedLoop, nil
	case "interp":
		return dixq.Interpreter, nil
	case "generic-sql":
		return dixq.GenericSQL, nil
	default:
		return 0, fmt.Errorf("unknown engine %q (di-opt, di-msj, di-nlj, interp, generic-sql)", name)
	}
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
