package server

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"dixq/internal/obs"
)

// defaultQueueDepth bounds the admission queue when Config leaves
// QueueDepth 0 and MaxConcurrent is set.
const defaultQueueDepth = 64

// defaultQueueTimeout bounds the time a request may wait for an
// execution slot when Config leaves QueueTimeout 0.
const defaultQueueTimeout = 2 * time.Second

// admitError is a refused admission: an HTTP status, a metric reason
// label, and the Retry-After hint in seconds.
type admitError struct {
	status     int
	reason     string
	msg        string
	retryAfter int
}

// tenantBudget tracks one tenant's admitted requests and reserved
// memory.
type tenantBudget struct {
	active int
	mem    int64
}

// admitter is the server's admission controller: a bounded execution
// semaphore with a bounded, time-limited wait queue in front of it, plus
// per-tenant concurrency and memory reservations. It layers on top of
// the process-wide exec worker budget — that budget bounds how many
// *workers* admitted queries can draw (degrading them toward serial),
// while the admitter bounds how many *requests* execute or wait at all,
// turning overload into fast 429s instead of goroutine pileup.
type admitter struct {
	// sem is the execution semaphore (send = acquire); nil when
	// MaxConcurrent is 0, meaning unlimited.
	sem          chan struct{}
	queueDepth   int
	queueTimeout time.Duration

	tenantConcurrent int
	tenantMem        int64
	// perRequestMem is the memory reservation charged per admitted
	// request against its tenant's budget: the server's per-query
	// MemBudget (the accounted sort footprint a query may hold before
	// spilling).
	perRequestMem int64

	draining atomic.Bool

	mu      sync.Mutex
	queued  int
	active  int
	peak    int
	tenants map[string]*tenantBudget
}

func newAdmitter(cfg Config) *admitter {
	a := &admitter{
		queueDepth:       cfg.QueueDepth,
		queueTimeout:     cfg.QueueTimeout,
		tenantConcurrent: cfg.TenantConcurrent,
		tenantMem:        cfg.TenantMemBudget,
		perRequestMem:    cfg.MemBudget,
		tenants:          map[string]*tenantBudget{},
	}
	if cfg.MaxConcurrent > 0 {
		a.sem = make(chan struct{}, cfg.MaxConcurrent)
	}
	if a.queueDepth == 0 {
		a.queueDepth = defaultQueueDepth
	} else if a.queueDepth < 0 {
		a.queueDepth = 0
	}
	if a.queueTimeout <= 0 {
		a.queueTimeout = defaultQueueTimeout
	}
	return a
}

// tenantOf extracts the request's tenant identity (the X-Tenant header;
// absent means the shared "default" tenant).
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return "default"
}

// reserveTenant charges one request against the tenant's concurrency and
// memory budgets, or reports why it cannot.
func (a *admitter) reserveTenant(tenant string) *admitError {
	if a.tenantConcurrent <= 0 && a.tenantMem <= 0 {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	tb := a.tenants[tenant]
	if tb == nil {
		tb = &tenantBudget{}
		a.tenants[tenant] = tb
	}
	if a.tenantConcurrent > 0 && tb.active >= a.tenantConcurrent {
		return &admitError{
			status: http.StatusTooManyRequests, reason: "tenant_concurrency", retryAfter: 1,
			msg: fmt.Sprintf("tenant %q is at its concurrency limit (%d)", tenant, a.tenantConcurrent),
		}
	}
	if a.tenantMem > 0 && tb.mem+a.perRequestMem > a.tenantMem {
		return &admitError{
			status: http.StatusTooManyRequests, reason: "tenant_memory", retryAfter: 1,
			msg: fmt.Sprintf("tenant %q is at its memory budget (%d bytes)", tenant, a.tenantMem),
		}
	}
	tb.active++
	tb.mem += a.perRequestMem
	return nil
}

func (a *admitter) unreserveTenant(tenant string) {
	if a.tenantConcurrent <= 0 && a.tenantMem <= 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if tb := a.tenants[tenant]; tb != nil {
		tb.active--
		tb.mem -= a.perRequestMem
		if tb.active <= 0 && tb.mem <= 0 {
			delete(a.tenants, tenant)
		}
	}
}

func (a *admitter) enter() {
	a.mu.Lock()
	a.active++
	if a.active > a.peak {
		a.peak = a.active
	}
	a.mu.Unlock()
}

func (a *admitter) exit() {
	a.mu.Lock()
	a.active--
	a.mu.Unlock()
}

// Peak returns the high-water mark of concurrently admitted requests.
func (a *admitter) Peak() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.peak
}

// acquire takes an execution slot, waiting in the bounded queue if none
// is free. Callers have the tenant reservation; a non-nil return means
// the slot was not taken.
func (a *admitter) acquire() *admitError {
	select {
	case a.sem <- struct{}{}:
		return nil
	default:
	}
	// No free slot: join the queue if it has room.
	a.mu.Lock()
	if a.queued >= a.queueDepth {
		a.mu.Unlock()
		return &admitError{
			status: http.StatusTooManyRequests, reason: "queue_full", retryAfter: 1,
			msg: fmt.Sprintf("admission queue is full (%d waiting)", a.queueDepth),
		}
	}
	a.queued++
	a.mu.Unlock()
	obs.AdmissionQueueDepth.Inc()
	start := time.Now()
	timer := time.NewTimer(a.queueTimeout)
	defer func() {
		timer.Stop()
		obs.AdmissionQueueDepth.Dec()
		a.mu.Lock()
		a.queued--
		a.mu.Unlock()
	}()
	select {
	case a.sem <- struct{}{}:
		obs.AdmissionWait.Observe(time.Since(start))
		return nil
	case <-timer.C:
		return &admitError{
			status: http.StatusTooManyRequests, reason: "queue_timeout", retryAfter: 1,
			msg: fmt.Sprintf("no execution slot within %s", a.queueTimeout),
		}
	}
}

// admit attempts to admit one request for a tenant. On success it
// returns a release closure (idempotent; call it when the request
// finishes). On refusal it returns the rejection.
func (a *admitter) admit(tenant string) (func(), *admitError) {
	if a.draining.Load() {
		return nil, &admitError{
			status: http.StatusServiceUnavailable, reason: "draining", retryAfter: 1,
			msg: "server is draining",
		}
	}
	if aerr := a.reserveTenant(tenant); aerr != nil {
		return nil, aerr
	}
	if a.sem != nil {
		if aerr := a.acquire(); aerr != nil {
			a.unreserveTenant(tenant)
			return nil, aerr
		}
	}
	a.enter()
	var once sync.Once
	return func() {
		once.Do(func() {
			a.exit()
			a.unreserveTenant(tenant)
			if a.sem != nil {
				<-a.sem
			}
		})
	}, nil
}
