package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"dixq"
)

// TestRouteMethodsAndContentTypes drives every registered route with its
// supported method, an unsupported one, and checks an unknown path — the
// contract being that every error body is JSON, wrong methods get 405
// with an Allow header, and success responses carry the right
// Content-Type.
func TestRouteMethodsAndContentTypes(t *testing.T) {
	ts := testServer(t, Config{})
	cases := []struct {
		name        string
		method      string
		path        string
		body        string
		status      int
		contentType string
		allow       string
	}{
		{"healthz ok", "GET", "/healthz", "", http.StatusOK, "text/plain; charset=utf-8", ""},
		{"healthz wrong method", "POST", "/healthz", "", http.StatusMethodNotAllowed, "application/json", "GET"},
		{"docs ok", "GET", "/docs", "", http.StatusOK, "application/json", ""},
		{"docs wrong method", "DELETE", "/docs", "", http.StatusMethodNotAllowed, "application/json", "GET"},
		{"doc get ok", "GET", "/docs/auction.xml", "", http.StatusOK, "application/json", ""},
		{"doc get missing", "GET", "/docs/ghost.xml", "", http.StatusNotFound, "application/json", ""},
		{"doc put ok", "PUT", "/docs/new.xml", `<r/>`, http.StatusCreated, "application/json", ""},
		{"doc update ok", "POST", "/docs/new.xml", `{"op":"append-child","path":[0],"xml":"<c/>"}`, http.StatusOK, "application/json", ""},
		{"doc delete ok", "DELETE", "/docs/new.xml", "", http.StatusOK, "application/json", ""},
		{"doc wrong method", "PATCH", "/docs/auction.xml", "", http.StatusMethodNotAllowed, "application/json", "GET, PUT, POST, DELETE"},
		{"metrics ok", "GET", "/metrics", "", http.StatusOK, "text/plain; version=0.0.4; charset=utf-8", ""},
		{"metrics wrong method", "POST", "/metrics", "", http.StatusMethodNotAllowed, "application/json", "GET"},
		{"traces ok", "GET", "/debug/traces", "", http.StatusOK, "application/json", ""},
		{"traces wrong method", "PUT", "/debug/traces", "", http.StatusMethodNotAllowed, "application/json", "GET"},
		{"query ok", "POST", "/query", `{"query":"1"}`, http.StatusOK, "application/json", ""},
		{"query wrong method", "GET", "/query", "", http.StatusMethodNotAllowed, "application/json", "POST"},
		{"explain ok", "POST", "/explain", `{"query":"1"}`, http.StatusOK, "application/json", ""},
		{"explain wrong method", "GET", "/explain", "", http.StatusMethodNotAllowed, "application/json", "POST"},
		{"sql ok", "POST", "/sql", `{"query":"1"}`, http.StatusOK, "application/json", ""},
		{"sql wrong method", "HEAD", "/sql", "", http.StatusMethodNotAllowed, "application/json", "POST"},
		{"unknown path", "GET", "/nope", "", http.StatusNotFound, "application/json", ""},
		{"unknown nested path", "POST", "/query/extra", "", http.StatusNotFound, "application/json", ""},
		{"bad request stays json", "POST", "/query", `{`, http.StatusBadRequest, "application/json", ""},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			var body io.Reader
			if tt.body != "" {
				body = strings.NewReader(tt.body)
			}
			req, err := http.NewRequest(tt.method, ts.URL+tt.path, body)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tt.status {
				t.Fatalf("status = %d, want %d (%s)", resp.StatusCode, tt.status, data)
			}
			if ct := resp.Header.Get("Content-Type"); ct != tt.contentType {
				t.Errorf("content-type = %q, want %q", ct, tt.contentType)
			}
			if tt.allow != "" {
				if got := resp.Header.Get("Allow"); got != tt.allow {
					t.Errorf("allow = %q, want %q", got, tt.allow)
				}
			}
			// Every error body must decode as {"error": ...}. HEAD has no
			// body by protocol.
			if tt.status >= 400 && tt.method != "HEAD" {
				var e errorResponse
				if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
					t.Errorf("error body not JSON: %q (%v)", data, err)
				}
			}
		})
	}
}

// TestMetricsEndpoint checks that running a query and a document write
// is visible in the Prometheus exposition afterwards.
func TestMetricsEndpoint(t *testing.T) {
	ts := testServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/query", QueryRequest{Query: dixq.XMarkQ8})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d: %s", resp.StatusCode, body)
	}
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/docs/m.xml", strings.NewReader(`<r/>`))
	if err != nil {
		t.Fatal(err)
	}
	presp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusCreated {
		t.Fatalf("put status %d", presp.StatusCode)
	}
	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	text, err := io.ReadAll(mr.Body)
	if err != nil {
		t.Fatal(err)
	}
	exposition := string(text)
	for _, want := range []string{
		"# TYPE dixq_queries_total counter",
		`dixq_queries_total{engine="di-opt",outcome="ok"}`,
		"# TYPE dixq_query_duration_seconds histogram",
		"dixq_query_duration_seconds_count",
		"dixq_active_queries",
		"dixq_plan_cache_misses_total",
		"# TYPE dixq_catalog_version gauge",
		"dixq_catalog_version",
		"dixq_catalog_documents",
		`dixq_doc_updates_total{op="put"}`,
		"# TYPE dixq_admission_rejections_total counter",
		"dixq_admission_queue_depth",
		"dixq_admission_wait_seconds",
		"dixq_snapshots_pinned",
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestTracesEndpoint samples every query (TraceSample: 1) and checks the
// trace shape: parse/plan-cache/execute spans, per-operator children for
// a DI engine, and the ?n= limit.
func TestTracesEndpoint(t *testing.T) {
	ts := testServer(t, Config{TraceSample: 1})
	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.URL+"/query", QueryRequest{Query: dixq.XMarkQ8})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query status %d: %s", resp.StatusCode, body)
		}
	}
	get := func(url string) TracesResponse {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out TracesResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	out := get(ts.URL + "/debug/traces")
	if out.SampleEvery != 1 {
		t.Errorf("sample_every = %d, want 1", out.SampleEvery)
	}
	if len(out.Traces) != 2 {
		t.Fatalf("got %d traces, want 2", len(out.Traces))
	}
	// Newest first: the second query hit the plan cache.
	tr := out.Traces[0]
	if tr.Engine != "di-opt" || tr.Outcome != "ok" || tr.DurationNS <= 0 {
		t.Fatalf("trace = %+v", tr)
	}
	if !strings.Contains(tr.Query, "document(") {
		t.Errorf("trace query = %q", tr.Query)
	}
	spans := map[string]dixqSpan{}
	for _, sp := range tr.Spans {
		spans[sp.Name] = dixqSpan{attrs: sp.Attrs, children: len(sp.Children)}
	}
	if sp, ok := spans["plan-cache"]; !ok || sp.attrs["hit"] != "true" {
		t.Errorf("second query's plan-cache span = %+v", spans["plan-cache"])
	}
	if sp, ok := spans["execute"]; !ok || sp.children == 0 {
		t.Errorf("execute span missing operator children: %+v", spans["execute"])
	}
	// The first (oldest) query parsed from scratch.
	first := out.Traces[1]
	foundParse := false
	for _, sp := range first.Spans {
		if sp.Name == "parse-compile" {
			foundParse = true
		}
	}
	if !foundParse {
		t.Errorf("first query missing parse-compile span: %+v", first.Spans)
	}
	// ?n= limits, newest first.
	if limited := get(ts.URL + "/debug/traces?n=1"); len(limited.Traces) != 1 ||
		limited.Traces[0].ID != tr.ID {
		t.Errorf("n=1 returned %d traces", len(limited.Traces))
	}
	// Bad n is a JSON 400.
	resp, err := http.Get(ts.URL + "/debug/traces?n=x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad n status = %d", resp.StatusCode)
	}
}

type dixqSpan struct {
	attrs    map[string]string
	children int
}

// TestTracingDisabled checks that a negative TraceSample turns sampling
// off entirely.
func TestTracingDisabled(t *testing.T) {
	ts := testServer(t, Config{TraceSample: -1})
	resp, body := postJSON(t, ts.URL+"/query", QueryRequest{Query: dixq.XMarkQ8})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d: %s", resp.StatusCode, body)
	}
	tr, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Body.Close()
	var out TracesResponse
	if err := json.NewDecoder(tr.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.SampleEvery != 0 || len(out.Traces) != 0 {
		t.Fatalf("disabled tracing returned %+v", out)
	}
}

// TestTraceQueryTruncated bounds the stored query text.
func TestTraceQueryTruncated(t *testing.T) {
	long := dixq.XMarkQ8 + strings.Repeat(" (: padding :)", 400)
	if len(long) <= traceQueryLimit {
		t.Fatal("test query not long enough")
	}
	ts := testServer(t, Config{TraceSample: 1})
	resp, body := postJSON(t, ts.URL+"/query", QueryRequest{Query: long})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d: %s", resp.StatusCode, body)
	}
	tr, err := http.Get(ts.URL + "/debug/traces?n=1")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Body.Close()
	var out TracesResponse
	if err := json.NewDecoder(tr.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Traces) != 1 || len(out.Traces[0].Query) > traceQueryLimit+len("…") {
		t.Fatalf("trace query not truncated: %d traces, %d bytes",
			len(out.Traces), len(out.Traces[0].Query))
	}
}
