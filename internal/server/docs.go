package server

// This file is the document lifecycle over HTTP: PUT loads or replaces
// a document (XML body, or a server-side .dixq/.xml file), POST applies
// a structural subtree update addressed by child ordinals, DELETE drops
// the document. Every write publishes a new catalog snapshot version;
// queries admitted before the write keep answering from their pinned
// snapshot.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"dixq"
	"dixq/internal/obs"
)

// docBodyLimit bounds the XML body of PUT /docs/{name}.
const docBodyLimit = 64 << 20

// updateBodyLimit bounds the JSON body of POST /docs/{name}.
const updateBodyLimit = 8 << 20

// DocsResponse is the GET /docs body: the current catalog version and
// the documents it holds.
type DocsResponse struct {
	Version uint64    `json:"version"`
	Docs    []DocInfo `json:"docs"`
}

// DocResponse is the success body of the document lifecycle endpoints.
type DocResponse struct {
	Name string `json:"name"`
	// Nodes is the document's node count after the operation (absent for
	// DELETE).
	Nodes int `json:"nodes,omitempty"`
	// Version is the catalog version the operation published.
	Version uint64 `json:"version"`
	// Created distinguishes a PUT that loaded a new document from one
	// that replaced an existing one.
	Created bool `json:"created,omitempty"`
}

// UpdateRequest is the POST /docs/{name} body: a structural update.
type UpdateRequest struct {
	// Op is one of "insert-after", "insert-before", "append-child",
	// "prepend-child", "delete".
	Op string `json:"op"`
	// Path addresses the target node by child ordinals: path[0] selects
	// among the document's top-level trees, each further ordinal among
	// the children of the node selected so far ([0] is the root element,
	// [0, 2] its third child).
	Path []int `json:"path"`
	// XML is the inserted fragment (forbidden for "delete").
	XML string `json:"xml,omitempty"`
}

// docTrace records a sampled lifecycle operation into the trace ring
// buffer (Engine "catalog"), alongside the query traces.
func (s *Server) docTrace(op, name string, start time.Time, outcome string, attrs map[string]string) {
	tr := obs.Trace{
		StartUnixNS: start.UnixNano(),
		DurationNS:  int64(time.Since(start)),
		Engine:      "catalog",
		Outcome:     outcome,
		Query:       op + " " + name,
		Spans:       []obs.Span{{Name: op, DurationNS: int64(time.Since(start)), Attrs: attrs}},
	}
	s.traces.Add(tr)
	obs.TracesSampled.Inc()
}

func (s *Server) handleDocs(w http.ResponseWriter, r *http.Request) {
	snap := s.cat.Snapshot()
	out := DocsResponse{Version: snap.Version(), Docs: []DocInfo{}}
	for _, name := range snap.Documents() {
		d, _ := snap.Document(name)
		out.Docs = append(out.Docs, DocInfo{Name: name, Nodes: d.Nodes(), Depth: d.Depth()})
	}
	writeJSON(w, http.StatusOK, out)
}

// DocGetResponse is the GET /docs/{name} body.
type DocGetResponse struct {
	DocInfo
	Trees   int    `json:"trees"`
	Version uint64 `json:"version"`
}

func (s *Server) handleDocGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	snap := s.cat.Snapshot()
	d, ok := snap.Document(name)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "no such document: " + name})
		return
	}
	writeJSON(w, http.StatusOK, DocGetResponse{
		DocInfo: DocInfo{Name: name, Nodes: d.Nodes(), Depth: d.Depth()},
		Trees:   d.Trees(),
		Version: snap.Version(),
	})
}

func (s *Server) handleDocPut(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	start := time.Now()
	var doc *dixq.Document
	if file := r.URL.Query().Get("file"); file != "" {
		if s.cfg.DocDir == "" {
			writeJSON(w, http.StatusBadRequest,
				errorResponse{Error: "server-side file loading is disabled (no document directory configured)"})
			return
		}
		clean := filepath.Clean(file)
		if filepath.IsAbs(clean) || clean == ".." || strings.HasPrefix(clean, ".."+string(filepath.Separator)) {
			writeJSON(w, http.StatusBadRequest,
				errorResponse{Error: "file path escapes the document directory: " + file})
			return
		}
		d, err := dixq.LoadDocumentFile(filepath.Join(s.cfg.DocDir, clean))
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		doc = d
	} else {
		data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, docBodyLimit))
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "read body: " + err.Error()})
			return
		}
		if len(data) == 0 {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "empty document body (XML expected)"})
			return
		}
		d, err := dixq.ParseDocument(string(data))
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		doc = d
	}
	_, existed := s.cat.Snapshot().Document(name)
	version := s.cat.Add(name, doc)
	obs.DocUpdates.With("put").Inc()
	if s.sampler.Sample() {
		s.docTrace("load-document", name, start, "ok", map[string]string{
			"nodes":   fmt.Sprint(doc.Nodes()),
			"version": fmt.Sprint(version),
		})
	}
	status := http.StatusOK
	if !existed {
		status = http.StatusCreated
	}
	writeJSON(w, status, DocResponse{Name: name, Nodes: doc.Nodes(), Version: version, Created: !existed})
}

func (s *Server) handleDocUpdate(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	start := time.Now()
	var req UpdateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, updateBodyLimit))
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	op := dixq.UpdateOp(req.Op)
	switch op {
	case dixq.OpDelete, dixq.OpInsertAfter, dixq.OpInsertBefore, dixq.OpAppendChild, dixq.OpPrependChild:
	default:
		writeJSON(w, http.StatusBadRequest, errorResponse{
			Error: fmt.Sprintf("unknown op %q (insert-after, insert-before, append-child, prepend-child, delete)", req.Op)})
		return
	}
	var frag *dixq.Document
	if op != dixq.OpDelete {
		if req.XML == "" {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "op " + req.Op + " requires an xml fragment"})
			return
		}
		d, err := dixq.ParseDocument(req.XML)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad xml fragment: " + err.Error()})
			return
		}
		frag = d
	}
	version, err := s.cat.Update(name, op, req.Path, frag)
	if err != nil {
		status := http.StatusUnprocessableEntity
		if errors.Is(err, dixq.ErrNoDocument) {
			status = http.StatusNotFound
		}
		writeJSON(w, status, errorResponse{Error: err.Error()})
		return
	}
	obs.DocUpdates.With("update").Inc()
	if s.reindex != nil {
		s.reindex.note(name)
	}
	if s.sampler.Sample() {
		s.docTrace("update-document", name, start, "ok", map[string]string{
			"op":      req.Op,
			"path":    fmt.Sprint(req.Path),
			"version": fmt.Sprint(version),
		})
	}
	nodes := 0
	if d, ok := s.cat.Snapshot().Document(name); ok {
		nodes = d.Nodes()
	}
	writeJSON(w, http.StatusOK, DocResponse{Name: name, Nodes: nodes, Version: version})
}

func (s *Server) handleDocDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	start := time.Now()
	version, ok := s.cat.Drop(name)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "no such document: " + name})
		return
	}
	obs.DocUpdates.With("drop").Inc()
	if s.sampler.Sample() {
		s.docTrace("drop-document", name, start, "ok", map[string]string{
			"version": fmt.Sprint(version),
		})
	}
	writeJSON(w, http.StatusOK, DocResponse{Name: name, Version: version})
}

// reindexer re-derives a document's structural index and statistics in
// the background after updates: updates publish immediately (plans fall
// back to scans for the touched document), then this loop calls
// Catalog.Reindex, which publishes the rebuilt sets under a fresh
// version. Pending names are deduplicated — reindexing a document covers
// every update published before the rebuild read the relation.
type reindexer struct {
	cat     *dixq.Catalog
	mu      sync.Mutex
	pending map[string]struct{}
	kick    chan struct{}
	stop    chan struct{}
	done    chan struct{}
}

func newReindexer(cat *dixq.Catalog) *reindexer {
	r := &reindexer{
		cat:     cat,
		pending: map[string]struct{}{},
		kick:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go r.loop()
	return r
}

func (r *reindexer) note(name string) {
	r.mu.Lock()
	r.pending[name] = struct{}{}
	r.mu.Unlock()
	select {
	case r.kick <- struct{}{}:
	default:
	}
}

func (r *reindexer) next() (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for name := range r.pending {
		delete(r.pending, name)
		return name, true
	}
	return "", false
}

func (r *reindexer) loop() {
	defer close(r.done)
	for {
		select {
		case <-r.stop:
			return
		case <-r.kick:
		}
		for {
			name, ok := r.next()
			if !ok {
				break
			}
			if _, rebuilt := r.cat.Reindex(name); rebuilt {
				obs.DocUpdates.With("reindex").Inc()
			}
		}
	}
}

func (r *reindexer) close() {
	close(r.stop)
	<-r.done
}
