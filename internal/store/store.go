// Package store persists interval-encoded documents — the "XML documents
// already stored in a relational system" starting point the paper's
// introduction assumes. A stored document is the ternary relation of
// Definition 3.1 in a compact binary form: shred once with interval.Encode,
// save, then serve any number of queries straight from the relation
// without reparsing XML.
//
// Format (DIXQS1): a label dictionary (labels repeat heavily in documents
// — element tags, attribute names) followed by tuples referencing labels
// by index, all integers varint-encoded. Keys store their digit vectors
// verbatim, so documents at any environment depth round-trip.
//
// Format (DIXQS2) appends the document's structural index (see
// internal/index) after the same body, so a loaded document comes with its
// dataguide and subtree ranges at no rebuild cost. DIXQS1 files still
// load; their index is rebuilt lazily from the relation.
//
// Format (DIXQS3) appends the document's optimizer statistics (see
// internal/stats) after the index, so a loaded document feeds the
// cost-based optimizer without a collection pass. DIXQS1/2 files still
// load; their statistics are rebuilt lazily from the relation.
package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"dixq/internal/index"
	"dixq/internal/interval"
	"dixq/internal/stats"
)

// magic identifies the file format and its version.
const magic = "DIXQS1\n"

// magic2 identifies the indexed format: the DIXQS1 body followed by the
// document's structural index.
const magic2 = "DIXQS2\n"

// magic3 identifies the full format: the DIXQS2 body and index followed
// by the document's optimizer statistics.
const magic3 = "DIXQS3\n"

// maxSaneLen bounds length fields while decoding, so corrupt or hostile
// files fail fast instead of allocating wildly.
const maxSaneLen = 1 << 31

// ErrFormat reports a malformed or foreign file.
var ErrFormat = errors.New("store: not a DIXQS1/DIXQS2/DIXQS3 file")

// Write serializes a relation in the unindexed DIXQS1 format.
func Write(w io.Writer, rel *interval.Relation) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	if err := writeBody(bw, rel); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteIndexed serializes a relation together with its structural index in
// the DIXQS2 format. The index must have been built over rel.
func WriteIndexed(w io.Writer, rel *interval.Relation, ix *index.DocIndex) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic2); err != nil {
		return err
	}
	if err := writeBody(bw, rel); err != nil {
		return err
	}
	if err := ix.Write(bw); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteFull serializes a relation together with its structural index and
// optimizer statistics in the DIXQS3 format. Index and statistics must
// have been built over rel.
func WriteFull(w io.Writer, rel *interval.Relation, ix *index.DocIndex, st *stats.DocStats) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic3); err != nil {
		return err
	}
	if err := writeBody(bw, rel); err != nil {
		return err
	}
	if err := ix.Write(bw); err != nil {
		return err
	}
	if err := st.Write(bw); err != nil {
		return err
	}
	return bw.Flush()
}

func writeBody(bw *bufio.Writer, rel *interval.Relation) error {
	labelIdx := map[string]uint64{}
	var labels []string
	for _, t := range rel.Tuples {
		if _, ok := labelIdx[t.S]; !ok {
			labelIdx[t.S] = uint64(len(labels))
			labels = append(labels, t.S)
		}
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := writeUvarint(uint64(len(labels))); err != nil {
		return err
	}
	for _, s := range labels {
		if err := writeUvarint(uint64(len(s))); err != nil {
			return err
		}
		if _, err := bw.WriteString(s); err != nil {
			return err
		}
	}
	if err := writeUvarint(uint64(len(rel.Tuples))); err != nil {
		return err
	}
	writeKey := func(k interval.Key) error {
		if err := writeUvarint(uint64(len(k))); err != nil {
			return err
		}
		for _, d := range k {
			if d < 0 {
				return fmt.Errorf("store: negative key digit %d", d)
			}
			if err := writeUvarint(uint64(d)); err != nil {
				return err
			}
		}
		return nil
	}
	for _, t := range rel.Tuples {
		if err := writeUvarint(labelIdx[t.S]); err != nil {
			return err
		}
		if err := writeKey(t.L); err != nil {
			return err
		}
		if err := writeKey(t.R); err != nil {
			return err
		}
	}
	return nil
}

// Read deserializes a relation written by Write, WriteIndexed or
// WriteFull, dropping the index and statistics sections.
func Read(r io.Reader) (*interval.Relation, error) {
	rel, _, _, err := readAny(r, false, false)
	return rel, err
}

// ReadIndexed deserializes a relation together with its structural index.
// For DIXQS1 files — which carry no index — the index is rebuilt from the
// relation, so old stores keep working and upgrade on their next save.
func ReadIndexed(r io.Reader) (*interval.Relation, *index.DocIndex, error) {
	rel, ix, _, err := readAny(r, true, false)
	return rel, ix, err
}

// ReadFull deserializes a relation together with its structural index and
// optimizer statistics. For DIXQS1/2 files — which carry no statistics —
// the missing sections are rebuilt from the relation, so old stores keep
// working and upgrade on their next save.
func ReadFull(r io.Reader) (*interval.Relation, *index.DocIndex, *stats.DocStats, error) {
	return readAny(r, true, true)
}

func readAny(r io.Reader, wantIndex, wantStats bool) (*interval.Relation, *index.DocIndex, *stats.DocStats, error) {
	dec := &decoder{br: bufio.NewReader(r)}
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(dec.br, head); err != nil {
		return nil, nil, nil, ErrFormat
	}
	var indexed, full bool
	switch string(head) {
	case magic:
	case magic2:
		indexed = true
	case magic3:
		indexed, full = true, true
	default:
		return nil, nil, nil, ErrFormat
	}
	rel, err := dec.body()
	if err != nil {
		return nil, nil, nil, err
	}
	var ix *index.DocIndex
	if indexed {
		ix, err = index.Read(dec.br, rel)
		if err != nil {
			return nil, nil, nil, err
		}
	}
	var st *stats.DocStats
	if full {
		st, err = stats.Read(dec.br)
		if err != nil {
			return nil, nil, nil, err
		}
	}
	// Exactly at end?
	if _, err := dec.br.ReadByte(); err != io.EOF {
		return nil, nil, nil, fmt.Errorf("store: trailing bytes after %d tuples", len(rel.Tuples))
	}
	if wantIndex && ix == nil {
		ix = index.Build(rel)
	}
	if wantStats && st == nil {
		st = stats.Collect(rel)
	}
	return rel, ix, st, nil
}

func (dec *decoder) body() (*interval.Relation, error) {
	nLabels, err := dec.uvarint()
	if err != nil {
		return nil, err
	}
	labels := make([]string, nLabels)
	for i := range labels {
		n, err := dec.uvarint()
		if err != nil {
			return nil, err
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(dec.br, b); err != nil {
			return nil, fmt.Errorf("store: truncated label: %w", err)
		}
		labels[i] = string(b)
	}
	nTuples, err := dec.uvarint()
	if err != nil {
		return nil, err
	}
	rel := &interval.Relation{Tuples: make([]interval.Tuple, 0, min(nTuples, 1<<20))}
	for i := uint64(0); i < nTuples; i++ {
		li, err := dec.uvarint()
		if err != nil {
			return nil, err
		}
		if li >= uint64(len(labels)) {
			return nil, fmt.Errorf("store: label index %d out of range", li)
		}
		l, err := dec.key()
		if err != nil {
			return nil, err
		}
		rk, err := dec.key()
		if err != nil {
			return nil, err
		}
		rel.Tuples = append(rel.Tuples, interval.Tuple{S: labels[li], L: l, R: rk})
	}
	return rel, nil
}

type decoder struct {
	br *bufio.Reader
	// arena backs all decoded keys, replacing two heap allocations per
	// tuple with shared chunks.
	arena interval.KeyArena
}

func (d *decoder) uvarint() (uint64, error) {
	v, err := binary.ReadUvarint(d.br)
	if err != nil {
		return 0, fmt.Errorf("store: truncated varint: %w", err)
	}
	if v > maxSaneLen {
		return 0, fmt.Errorf("store: implausible length %d", v)
	}
	return v, nil
}

func (d *decoder) key() (interval.Key, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	if n > 1<<16 {
		return nil, fmt.Errorf("store: implausible key length %d", n)
	}
	k := d.arena.Alloc(int(n))
	for i := range k {
		v, err := binary.ReadUvarint(d.br)
		if err != nil {
			return nil, fmt.Errorf("store: truncated key: %w", err)
		}
		k[i] = int64(v)
	}
	return k, nil
}

// Save writes a relation to a file, atomically via a temporary sibling.
func Save(path string, rel *interval.Relation) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".dixq-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := Write(tmp, rel); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: rename %s to %s: %w", tmp.Name(), path, err)
	}
	return nil
}

// SaveIndexed writes a relation and its structural index to a file,
// atomically via a temporary sibling.
func SaveIndexed(path string, rel *interval.Relation, ix *index.DocIndex) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".dixq-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := WriteIndexed(tmp, rel, ix); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: rename %s to %s: %w", tmp.Name(), path, err)
	}
	return nil
}

// SaveFull writes a relation, its structural index and its optimizer
// statistics to a file, atomically via a temporary sibling.
func SaveFull(path string, rel *interval.Relation, ix *index.DocIndex, st *stats.DocStats) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".dixq-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := WriteFull(tmp, rel, ix, st); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: rename %s to %s: %w", tmp.Name(), path, err)
	}
	return nil
}

// LoadFull reads a relation, its structural index and its optimizer
// statistics from a file. For DIXQS1/2 files the missing sections are
// rebuilt from the relation.
func LoadFull(path string) (*interval.Relation, *index.DocIndex, *stats.DocStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, nil, err
	}
	defer f.Close()
	rel, ix, st, err := ReadFull(f)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return rel, ix, st, nil
}

// LoadIndexed reads a relation and its structural index from a file. For
// DIXQS1 files the index is rebuilt from the relation.
func LoadIndexed(path string) (*interval.Relation, *index.DocIndex, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	rel, ix, err := ReadIndexed(f)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return rel, ix, nil
}

// Load reads a relation from a file.
func Load(path string) (*interval.Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rel, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rel, nil
}
