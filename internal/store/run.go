// Streaming run encoding (DIXQR1) — the on-disk format of external-sort
// spill runs. Save/Load persist whole relations with an up-front label
// dictionary; a spill run is written incrementally while sorting, so the
// dictionary grows inline instead: the first occurrence of a label travels
// with the tuple, later occurrences reference it by index. Digits use
// signed varints because spill runs carry derived intermediate keys, not
// just document encodings. Record framing above the tuple level (sort keys,
// group lengths) is the caller's — RunWriter/RunReader expose the uvarint,
// key, and tuple primitives and nothing more.
package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"dixq/internal/interval"
	"dixq/internal/obs"
)

// runMagic identifies a spill-run stream and its version.
const runMagic = "DIXQR1\n"

// countingWriter tracks encoded bytes as they leave the buffer, so the
// spill I/O volume is observable (dixq_spill_run_bytes_written_total)
// at bufio-flush granularity — one counter add per buffer drain, never
// per primitive.
type countingWriter struct {
	w io.Writer
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	obs.RunBytesWritten.Add(int64(n))
	return n, err
}

// countingReader is the read-side twin, charging
// dixq_spill_run_bytes_read_total per bufio fill.
type countingReader struct {
	r io.Reader
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	obs.RunBytesRead.Add(int64(n))
	return n, err
}

// RunWriter streams primitives to one spill run.
type RunWriter struct {
	bw     *bufio.Writer
	labels map[string]uint64
	buf    [binary.MaxVarintLen64]byte
}

// NewRunWriter starts a run on w by writing the format magic.
func NewRunWriter(w io.Writer) (*RunWriter, error) {
	rw := &RunWriter{bw: bufio.NewWriter(&countingWriter{w: w}), labels: map[string]uint64{}}
	if _, err := rw.bw.WriteString(runMagic); err != nil {
		return nil, err
	}
	return rw, nil
}

// Uvarint writes one unsigned varint.
func (w *RunWriter) Uvarint(v uint64) error {
	n := binary.PutUvarint(w.buf[:], v)
	_, err := w.bw.Write(w.buf[:n])
	return err
}

// varint writes one signed varint (zigzag).
func (w *RunWriter) varint(v int64) error {
	n := binary.PutVarint(w.buf[:], v)
	_, err := w.bw.Write(w.buf[:n])
	return err
}

// Key writes a key as its length followed by its digits.
func (w *RunWriter) Key(k interval.Key) error {
	if err := w.Uvarint(uint64(len(k))); err != nil {
		return err
	}
	for _, d := range k {
		if err := w.varint(d); err != nil {
			return err
		}
	}
	return nil
}

// Tuple writes one tuple: a label reference (0 means "new label, inline
// bytes follow"; i+1 references the i-th label seen) and both keys.
func (w *RunWriter) Tuple(t interval.Tuple) error {
	if idx, ok := w.labels[t.S]; ok {
		if err := w.Uvarint(idx + 1); err != nil {
			return err
		}
	} else {
		w.labels[t.S] = uint64(len(w.labels))
		if err := w.Uvarint(0); err != nil {
			return err
		}
		if err := w.Uvarint(uint64(len(t.S))); err != nil {
			return err
		}
		if _, err := w.bw.WriteString(t.S); err != nil {
			return err
		}
	}
	if err := w.Key(t.L); err != nil {
		return err
	}
	return w.Key(t.R)
}

// Flush drains the buffered writer; call once after the last record.
func (w *RunWriter) Flush() error { return w.bw.Flush() }

// RunReader streams primitives back from a spill run. Decoded keys live in
// a shared arena; labels are interned once per run.
type RunReader struct {
	br     *bufio.Reader
	labels []string
	arena  interval.KeyArena
}

// NewRunReader checks the format magic and returns a reader positioned at
// the first record.
func NewRunReader(r io.Reader) (*RunReader, error) {
	rr := &RunReader{br: bufio.NewReader(&countingReader{r: r})}
	head := make([]byte, len(runMagic))
	if _, err := io.ReadFull(rr.br, head); err != nil || string(head) != runMagic {
		return nil, ErrFormat
	}
	return rr, nil
}

// Uvarint reads one unsigned varint. A clean end of stream surfaces as
// io.EOF; anything else is wrapped.
func (r *RunReader) Uvarint() (uint64, error) {
	v, err := binary.ReadUvarint(r.br)
	if err == io.EOF {
		return 0, io.EOF
	}
	if err != nil {
		return 0, fmt.Errorf("store: truncated run varint: %w", err)
	}
	if v > maxSaneLen {
		return 0, fmt.Errorf("store: implausible run length %d", v)
	}
	return v, nil
}

// Key reads one key into the shared arena.
func (r *RunReader) Key() (interval.Key, error) {
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	if n > 1<<16 {
		return nil, fmt.Errorf("store: implausible run key length %d", n)
	}
	k := r.arena.Alloc(int(n))
	for i := range k {
		d, err := binary.ReadVarint(r.br)
		if err != nil {
			return nil, fmt.Errorf("store: truncated run key: %w", err)
		}
		k[i] = d
	}
	return k, nil
}

// Tuple reads one tuple written by RunWriter.Tuple. io.EOF at a record
// boundary signals the end of the run.
func (r *RunReader) Tuple() (interval.Tuple, error) {
	ref, err := r.Uvarint()
	if err != nil {
		return interval.Tuple{}, err // io.EOF here is a clean end of run
	}
	var s string
	if ref == 0 {
		n, err := r.Uvarint()
		if err != nil {
			return interval.Tuple{}, fmt.Errorf("store: truncated run label: %w", err)
		}
		if n > 1<<20 {
			return interval.Tuple{}, fmt.Errorf("store: implausible run label length %d", n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(r.br, b); err != nil {
			return interval.Tuple{}, fmt.Errorf("store: truncated run label: %w", err)
		}
		s = string(b)
		r.labels = append(r.labels, s)
	} else {
		if ref > uint64(len(r.labels)) {
			return interval.Tuple{}, fmt.Errorf("store: run label reference %d out of range", ref)
		}
		s = r.labels[ref-1]
	}
	l, err := r.Key()
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return interval.Tuple{}, fmt.Errorf("store: truncated run tuple: %w", err)
	}
	rk, err := r.Key()
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return interval.Tuple{}, fmt.Errorf("store: truncated run tuple: %w", err)
	}
	return interval.Tuple{S: s, L: l, R: rk}, nil
}
