package store

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"dixq/internal/index"
	"dixq/internal/interval"
	"dixq/internal/xmark"
	"dixq/internal/xmltree"
)

func roundTrip(t *testing.T, rel *interval.Relation) *interval.Relation {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, rel); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	return got
}

func equalRel(a, b *interval.Relation) bool {
	if len(a.Tuples) != len(b.Tuples) {
		return false
	}
	for i := range a.Tuples {
		x, y := a.Tuples[i], b.Tuples[i]
		if x.S != y.S || !x.L.Equal(y.L) || !x.R.Equal(y.R) {
			return false
		}
	}
	return true
}

func TestRoundTripFigure1(t *testing.T) {
	rel := interval.Encode(xmark.Figure1Forest())
	got := roundTrip(t, rel)
	if !equalRel(rel, got) {
		t.Fatal("round trip changed the relation")
	}
	f, err := interval.Decode(got)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Equal(xmark.Figure1Forest()) {
		t.Fatal("decoded forest differs")
	}
}

func TestRoundTripQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rel := interval.Encode(xmltree.RandomForest(rng, 20))
		return equalRel(rel, roundTrip(t, rel))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestRoundTripMultiDigitKeys(t *testing.T) {
	rel := &interval.Relation{Tuples: []interval.Tuple{
		{S: "<a>", L: interval.Key{0, 5, 2}, R: interval.Key{0, 5, 9}},
		{S: "txt", L: interval.Key{1}, R: interval.Key{2}},
		{S: "", L: nil, R: interval.Key{3}}, // empty label, nil key
	}}
	got := roundTrip(t, rel)
	if !equalRel(rel, got) {
		t.Fatalf("got %v", got.Tuples)
	}
}

func TestRoundTripEmpty(t *testing.T) {
	got := roundTrip(t, &interval.Relation{})
	if got.Len() != 0 {
		t.Fatalf("got %d tuples", got.Len())
	}
}

func TestSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "doc.dixq")
	rel := interval.Encode(xmark.Generate(xmark.Config{ScaleFactor: 0.001, Seed: 4}))
	if err := Save(path, rel); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !equalRel(rel, got) {
		t.Fatal("Save/Load mismatch")
	}
	// No temp files left behind.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want 1", len(entries))
	}
}

// TestIndexedRoundTrip covers the DIXQS2 format: WriteIndexed/ReadIndexed
// preserve both the relation and the structural index; plain Read skips
// the index section of an indexed file; and ReadIndexed of a plain DIXQS1
// file rebuilds the index lazily.
func TestIndexedRoundTrip(t *testing.T) {
	rel := interval.Encode(xmark.Generate(xmark.Config{ScaleFactor: 0.001, Seed: 4}))
	ix := index.Build(rel)

	var buf bytes.Buffer
	if err := WriteIndexed(&buf, rel, ix); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()

	gotRel, gotIx, err := ReadIndexed(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	if !equalRel(rel, gotRel) {
		t.Fatal("indexed round trip changed the relation")
	}
	if !reflect.DeepEqual(gotIx.Paths(), ix.Paths()) {
		t.Fatal("indexed round trip changed the dataguide")
	}
	if gotIx.Rel != gotRel {
		t.Fatal("decoded index is not bound to the decoded relation")
	}

	// Plain Read drops the index section cleanly.
	plainRel, err := Read(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	if !equalRel(rel, plainRel) {
		t.Fatal("plain Read of an indexed file changed the relation")
	}

	// DIXQS1 input: the index is rebuilt, not read.
	var v1 bytes.Buffer
	if err := Write(&v1, rel); err != nil {
		t.Fatal(err)
	}
	v1Rel, v1Ix, err := ReadIndexed(&v1)
	if err != nil {
		t.Fatal(err)
	}
	if !equalRel(rel, v1Rel) || v1Ix == nil {
		t.Fatal("DIXQS1 upgrade read failed")
	}
	if !reflect.DeepEqual(v1Ix.Paths(), ix.Paths()) {
		t.Fatal("lazily rebuilt index disagrees with the persisted one")
	}
}

func TestSaveLoadIndexed(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "doc.dixq")
	rel := interval.Encode(xmark.Figure1Forest())
	if err := SaveIndexed(path, rel, index.Build(rel)); err != nil {
		t.Fatal(err)
	}
	got, ix, err := LoadIndexed(path)
	if err != nil {
		t.Fatal(err)
	}
	if !equalRel(rel, got) || ix == nil || ix.Rel != got {
		t.Fatal("SaveIndexed/LoadIndexed mismatch")
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want 1", len(entries))
	}
}

func TestSaveIntoCurrentDir(t *testing.T) {
	// Exercise the bare-filename path (filepath.Dir returns ".").
	old, _ := os.Getwd()
	if err := os.Chdir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(old)
	rel := interval.Encode(xmltree.Forest{xmltree.NewText("x")})
	if err := Save("plain.dixq", rel); err != nil {
		t.Fatal(err)
	}
	if _, err := Load("plain.dixq"); err != nil {
		t.Fatal(err)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.dixq")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestReadRejectsCorruption(t *testing.T) {
	rel := interval.Encode(xmark.Figure1Forest())
	var buf bytes.Buffer
	if err := Write(&buf, rel); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	cases := map[string][]byte{
		"empty":            {},
		"bad magic":        []byte("NOTDIXQ" + string(valid[7:])),
		"truncated header": valid[:3],
		"truncated labels": valid[:len(magic)+2],
		"truncated tuples": valid[:len(valid)-4],
		"trailing garbage": append(append([]byte{}, valid...), 0x01),
		"xml not a store":  []byte("<site></site>"),
	}
	for name, data := range cases {
		if _, err := Read(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}

	// Label index out of range: flip the first tuple's label index to a
	// huge varint by rebuilding a minimal file.
	var b bytes.Buffer
	b.WriteString(magic)
	b.Write([]byte{1, 1, 'x'}) // 1 label: "x"
	b.Write([]byte{1})         // 1 tuple
	b.Write([]byte{9})         // label index 9: out of range
	b.Write([]byte{1, 0})      // L = [0]
	b.Write([]byte{1, 1})      // R = [1]
	if _, err := Read(&b); err == nil {
		t.Error("out-of-range label index: expected error")
	}
}

func TestWriteRejectsNegativeDigits(t *testing.T) {
	rel := &interval.Relation{Tuples: []interval.Tuple{
		{S: "x", L: interval.Key{-1}, R: interval.Key{2}},
	}}
	if err := Write(&bytes.Buffer{}, rel); err == nil {
		t.Error("negative digit should fail")
	}
}

func TestFormatIsCompact(t *testing.T) {
	doc := xmark.Generate(xmark.Config{ScaleFactor: 0.002, Seed: 7})
	rel := interval.Encode(doc)
	var buf bytes.Buffer
	if err := Write(&buf, rel); err != nil {
		t.Fatal(err)
	}
	xmlLen := len(doc.String())
	if buf.Len() > xmlLen {
		t.Errorf("store %d bytes > XML %d bytes; label dictionary not effective?", buf.Len(), xmlLen)
	}
}

// failWriter fails after n bytes, exercising Write's error propagation.
type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("disk full")
	}
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, errors.New("disk full")
	}
	w.n -= len(p)
	return len(p), nil
}

func TestWriteErrors(t *testing.T) {
	rel := interval.Encode(xmark.Figure1Forest())
	// Fail at various prefixes: header, label table, tuples.
	for _, budget := range []int{0, 3, 10, 50, 400} {
		if err := Write(&failWriter{n: budget}, rel); err == nil {
			// Large budgets may succeed only if the whole file fits.
			var buf bytes.Buffer
			_ = Write(&buf, rel)
			if budget < buf.Len() {
				t.Errorf("budget %d: expected write error", budget)
			}
		}
	}
}

func TestSaveErrors(t *testing.T) {
	rel := interval.Encode(xmark.Figure1Forest())
	if err := Save(filepath.Join(t.TempDir(), "no", "such", "dir", "f.dixq"), rel); err == nil {
		t.Error("Save into missing directory should fail")
	}
	bad := &interval.Relation{Tuples: []interval.Tuple{{S: "x", L: interval.Key{-1}, R: interval.Key{1}}}}
	dir := t.TempDir()
	if err := Save(filepath.Join(dir, "bad.dixq"), bad); err == nil {
		t.Error("Save of negative-digit relation should fail")
	}
	// The failed Save must not leave the target file behind.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 0 {
		t.Errorf("failed Save left %d entries", len(entries))
	}
}

func TestImplausibleLengths(t *testing.T) {
	// A huge label count must be rejected before allocation.
	var b bytes.Buffer
	b.WriteString(magic)
	b.Write([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}) // ~2^63
	if _, err := Read(&b); err == nil {
		t.Error("implausible label count accepted")
	}
	// Implausible key length.
	var c bytes.Buffer
	c.WriteString(magic)
	c.Write([]byte{1, 1, 'x'})        // one label
	c.Write([]byte{1})                // one tuple
	c.Write([]byte{0})                // label 0
	c.Write([]byte{0xff, 0xff, 0x7f}) // key length ~2M
	if _, err := Read(&c); err == nil {
		t.Error("implausible key length accepted")
	}
}
