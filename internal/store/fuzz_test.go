package store

import (
	"bytes"
	"io"
	"math/rand"
	"testing"

	"dixq/internal/interval"
	"dixq/internal/xmark"
	"dixq/internal/xmltree"
)

// FuzzStoreRead throws arbitrary bytes at both decoders. The contract
// under fuzzing: never panic, never allocate proportionally to a length
// field the input merely claims (the maxSaneLen / key-length / label-length
// guards), and reject corrupt input with an error rather than garbage.
func FuzzStoreRead(f *testing.F) {
	// Seed with valid DIXQS1 bytes at several shapes.
	seedRels := []*interval.Relation{
		{},
		interval.Encode(xmark.Figure1Forest()),
		interval.Encode(xmltree.RandomForest(rand.New(rand.NewSource(1)), 30)),
		{Tuples: []interval.Tuple{{S: "", L: nil, R: interval.Key{3}}}},
	}
	for _, rel := range seedRels {
		var buf bytes.Buffer
		if err := Write(&buf, rel); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// And a valid run stream, so the corpus covers both magics.
	var runBuf bytes.Buffer
	w, err := NewRunWriter(&runBuf)
	if err != nil {
		f.Fatal(err)
	}
	for _, tp := range seedRels[1].Tuples {
		if err := w.Tuple(tp); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	f.Add(runBuf.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		if rel, err := Read(bytes.NewReader(data)); err == nil {
			// A successful read must have produced a self-consistent
			// relation whose size is bounded by the input that encoded it:
			// every tuple costs at least three bytes on the wire.
			if len(rel.Tuples) > len(data) {
				t.Fatalf("decoded %d tuples from %d bytes", len(rel.Tuples), len(data))
			}
		}
		if r, err := NewRunReader(bytes.NewReader(data)); err == nil {
			n := 0
			for {
				_, err := r.Tuple()
				if err != nil {
					if err != io.EOF && n > len(data) {
						t.Fatalf("run decoded %d tuples from %d bytes", n, len(data))
					}
					break
				}
				n++
				if n > len(data) {
					t.Fatalf("run yielded more tuples than input bytes")
				}
			}
		}
	})
}
