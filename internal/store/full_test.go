package store

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"

	"dixq/internal/index"
	"dixq/internal/interval"
	"dixq/internal/stats"
	"dixq/internal/xmark"
)

// TestFullRoundTrip covers the DIXQS3 format: WriteFull/ReadFull preserve
// the relation, index and statistics; plain Read and ReadIndexed skip the
// extra sections; and ReadFull of DIXQS1/2 files rebuilds statistics
// lazily.
func TestFullRoundTrip(t *testing.T) {
	rel := interval.Encode(xmark.Generate(xmark.Config{ScaleFactor: 0.001, Seed: 4}))
	ix := index.Build(rel)
	st := stats.Collect(rel)

	var buf bytes.Buffer
	if err := WriteFull(&buf, rel, ix, st); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()

	gotRel, gotIx, gotSt, err := ReadFull(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	if !equalRel(rel, gotRel) {
		t.Fatal("full round trip changed the relation")
	}
	if !reflect.DeepEqual(gotIx.Paths(), ix.Paths()) {
		t.Fatal("full round trip changed the dataguide")
	}
	if !reflect.DeepEqual(gotSt, st) {
		t.Fatalf("full round trip changed the statistics:\ngot  %+v\nwant %+v", gotSt, st)
	}
	if gotIx.Rel != gotRel {
		t.Fatal("decoded index is not bound to the decoded relation")
	}

	// Plain Read and ReadIndexed drop the stats section cleanly.
	if plainRel, err := Read(bytes.NewReader(enc)); err != nil || !equalRel(rel, plainRel) {
		t.Fatalf("plain Read of a full file: %v", err)
	}
	if ixRel, ixIx, err := ReadIndexed(bytes.NewReader(enc)); err != nil || !equalRel(rel, ixRel) || ixIx == nil {
		t.Fatalf("ReadIndexed of a full file: %v", err)
	}

	// DIXQS1 and DIXQS2 inputs: statistics are rebuilt, not read.
	for _, old := range []func(*bytes.Buffer) error{
		func(b *bytes.Buffer) error { return Write(b, rel) },
		func(b *bytes.Buffer) error { return WriteIndexed(b, rel, ix) },
	} {
		var v bytes.Buffer
		if err := old(&v); err != nil {
			t.Fatal(err)
		}
		oldRel, oldIx, oldSt, err := ReadFull(&v)
		if err != nil {
			t.Fatal(err)
		}
		if !equalRel(rel, oldRel) || oldIx == nil || oldSt == nil {
			t.Fatal("old-format upgrade read failed")
		}
		if !reflect.DeepEqual(oldSt, st) {
			t.Fatal("lazily rebuilt statistics disagree with the persisted ones")
		}
	}
}

func TestSaveLoadFull(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "doc.dixq")
	rel := interval.Encode(xmark.Figure1Forest())
	ix := index.Build(rel)
	st := stats.Collect(rel)
	if err := SaveFull(path, rel, ix, st); err != nil {
		t.Fatal(err)
	}
	got, gotIx, gotSt, err := LoadFull(path)
	if err != nil {
		t.Fatal(err)
	}
	if !equalRel(rel, got) || gotIx == nil || gotIx.Rel != got {
		t.Fatal("SaveFull/LoadFull relation or index mismatch")
	}
	if !reflect.DeepEqual(gotSt, st) {
		t.Fatal("SaveFull/LoadFull statistics mismatch")
	}
}

// TestFullRejectsCorruption truncates and mangles the stats section of a
// DIXQS3 file at every byte offset past the index: every cut must fail
// loudly, never decode to wrong statistics silently.
func TestFullRejectsCorruption(t *testing.T) {
	rel := interval.Encode(xmark.Figure1Forest())
	ix := index.Build(rel)
	st := stats.Collect(rel)

	var full bytes.Buffer
	if err := WriteFull(&full, rel, ix, st); err != nil {
		t.Fatal(err)
	}
	var indexed bytes.Buffer
	if err := WriteIndexed(&indexed, rel, ix); err != nil {
		t.Fatal(err)
	}
	fullBytes := full.Bytes()
	// The stats section occupies everything past the (identical) body and
	// index, which WriteIndexed measures exactly.
	statsStart := indexed.Len()
	if statsStart >= len(fullBytes) {
		t.Fatalf("no stats section: full %d bytes, indexed %d", len(fullBytes), statsStart)
	}

	for cut := statsStart; cut < len(fullBytes); cut++ {
		if _, _, _, err := ReadFull(bytes.NewReader(fullBytes[:cut])); err == nil {
			t.Fatalf("truncation at byte %d/%d decoded without error", cut, len(fullBytes))
		}
	}

	// Trailing garbage after a complete stats section.
	garbage := append(append([]byte{}, fullBytes...), 0x7)
	if _, _, _, err := ReadFull(bytes.NewReader(garbage)); err == nil {
		t.Fatal("trailing garbage decoded without error")
	}

	// An implausible length inside the stats section.
	mangled := append([]byte{}, fullBytes[:statsStart]...)
	mangled = append(mangled, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f)
	if _, _, _, err := ReadFull(bytes.NewReader(mangled)); err == nil {
		t.Fatal("implausible stats length decoded without error")
	}
}
