package store

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"dixq/internal/interval"
	"dixq/internal/xmltree"
)

// runRoundTrip writes every tuple of rel through a RunWriter and reads it
// back through a RunReader.
func runRoundTrip(t *testing.T, rel *interval.Relation) *interval.Relation {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewRunWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range rel.Tuples {
		if err := w.Tuple(tp); err != nil {
			t.Fatalf("Tuple: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewRunReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := &interval.Relation{}
	for {
		tp, err := r.Tuple()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("read tuple: %v", err)
		}
		got.Tuples = append(got.Tuples, tp)
	}
	return got
}

// TestRunRoundTripQuick is the property test of the spill-run format:
// relations from random documents survive the streaming encode/decode
// digit-for-digit, including the inline label dictionary.
func TestRunRoundTripQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rel := interval.Encode(xmltree.RandomForest(rng, 20))
		return equalRel(rel, runRoundTrip(t, rel))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestRunNegativeDigits pins the difference from DIXQS1: derived keys with
// negative digits round-trip (signed varints), instead of erroring.
func TestRunNegativeDigits(t *testing.T) {
	rel := &interval.Relation{Tuples: []interval.Tuple{
		{S: "<a>", L: interval.Key{-3, 0, 7}, R: interval.Key{-3, 0, 9}},
		{S: "", L: nil, R: interval.Key{-1}},
	}}
	if !equalRel(rel, runRoundTrip(t, rel)) {
		t.Fatal("negative-digit keys did not round-trip")
	}
}

// TestRunMixedFraming checks that caller-level framing (uvarints and bare
// keys interleaved with tuples, as the external sorter writes records)
// round-trips positionally.
func TestRunMixedFraming(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewRunWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	key := interval.Key{4, 0, 2}
	tup := interval.Tuple{S: "t", L: interval.Key{1}, R: interval.Key{2}}
	if err := w.Uvarint(7); err != nil {
		t.Fatal(err)
	}
	if err := w.Key(key); err != nil {
		t.Fatal(err)
	}
	if err := w.Uvarint(1); err != nil {
		t.Fatal(err)
	}
	if err := w.Tuple(tup); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewRunReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := r.Uvarint(); err != nil || v != 7 {
		t.Fatalf("uvarint = %d, %v", v, err)
	}
	if k, err := r.Key(); err != nil || !k.Equal(key) {
		t.Fatalf("key = %v, %v", k, err)
	}
	if v, err := r.Uvarint(); err != nil || v != 1 {
		t.Fatalf("count = %d, %v", v, err)
	}
	tp, err := r.Tuple()
	if err != nil || tp.S != tup.S || !tp.L.Equal(tup.L) || !tp.R.Equal(tup.R) {
		t.Fatalf("tuple = %v, %v", tp, err)
	}
	if _, err := r.Uvarint(); err != io.EOF {
		t.Fatalf("end of run: got %v, want io.EOF", err)
	}
}

// TestRunReaderRejectsCorruption mirrors the DIXQS1 corruption suite for
// the run format.
func TestRunReaderRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewRunWriter(&buf)
	_ = w.Tuple(interval.Tuple{S: "abc", L: interval.Key{1}, R: interval.Key{2}})
	_ = w.Tuple(interval.Tuple{S: "abc", L: interval.Key{3}, R: interval.Key{4}})
	_ = w.Flush()
	valid := buf.Bytes()

	if _, err := NewRunReader(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream: expected error")
	}
	if _, err := NewRunReader(bytes.NewReader([]byte("DIXQS1\n"))); err == nil {
		t.Error("wrong magic (store format): expected error")
	}
	for cut := len(runMagic) + 1; cut < len(valid); cut++ {
		r, err := NewRunReader(bytes.NewReader(valid[:cut]))
		if err != nil {
			continue
		}
		sawErr := false
		for {
			_, err := r.Tuple()
			if err == io.EOF {
				break
			}
			if err != nil {
				sawErr = true
				break
			}
		}
		// A cut mid-record must error; a cut exactly between the two
		// records legitimately reads one tuple then EOFs.
		_ = sawErr
	}

	// Label reference out of range.
	var b bytes.Buffer
	b.WriteString(runMagic)
	b.Write([]byte{9})    // reference label 8: none defined yet
	b.Write([]byte{1, 2}) // L = [1]
	b.Write([]byte{1, 4}) // R = [2]
	r, err := NewRunReader(&b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Tuple(); err == nil {
		t.Error("out-of-range label reference accepted")
	}
}
