package plan

import "time"

// NodeStats are the actuals of one operator in one execution. Time and
// Allocs are exclusive — work done by a node's inputs is charged to the
// inputs — so the per-plan totals are the sums over all nodes.
type NodeStats struct {
	// Calls counts how many times the operator ran (usually 1: the
	// dynamic-interval evaluation is set-oriented, every operator
	// processes all environments in one call).
	Calls int
	// Rows is the total output tuple count across calls. For predicate
	// operators it counts evaluated environments.
	Rows int64
	// Time is the exclusive wall time spent in the operator.
	Time time.Duration
	// Allocs is the exclusive allocated-byte delta attributed to the
	// operator (heap-sampled; an order-of-magnitude signal, not exact).
	Allocs int64
	// Batches counts the columnar chunks the operator processed (only the
	// batch-executed operators report it; materializing operators leave 0).
	Batches int
	// Bytes is the accounted footprint of the chunks that flowed through
	// the operator — deterministic for a fixed document, unlike Allocs.
	Bytes int64
	// Spilled counts external-sort runs the operator wrote to disk while
	// staying under the memory budget.
	Spilled int64
	// Skipped counts the relation tuples an index-backed source never read
	// — document rows outside the served ranges (the whole document for a
	// pruned path). 0 for scan-backed and non-source operators.
	Skipped int64
	// Workers is the largest number of pool workers that participated in
	// one of the operator's parallel phases (morsel chains, concurrent
	// merge-join sorts, the partitioned probe); 0 for operators that ran
	// no parallel phase. The process-wide worker budget may grant fewer
	// workers than Options.Parallelism requested, so this is an observed
	// actual.
	Workers int
	// Partitions is the largest key-range partition count of the
	// operator's exchange or probe repartitioning (1 when a join probe ran
	// serial, 0 for operators that never partition). Unlike Workers it
	// depends only on the input and the requested parallelism, never on
	// the budget's grant.
	Partitions int
}

// RunStats holds one execution's per-node actuals, indexed by Node.ID.
// Each execution owns its RunStats; the plan itself stays immutable and
// shared.
type RunStats struct {
	Nodes []NodeStats
}

// NewRunStats sizes a stats block for a plan.
func NewRunStats(root *Node) *RunStats {
	return &RunStats{Nodes: make([]NodeStats, MaxID(root)+1)}
}

// Node returns the stats slot for a node ID (zero value if out of range).
func (rs *RunStats) Node(id int) NodeStats {
	if rs == nil || id < 0 || id >= len(rs.Nodes) {
		return NodeStats{}
	}
	return rs.Nodes[id]
}

// Total sums the exclusive operator times; because times are exclusive
// this is the plan's total execution wall time.
func (rs *RunStats) Total() time.Duration {
	if rs == nil {
		return 0
	}
	var d time.Duration
	for _, n := range rs.Nodes {
		d += n.Time
	}
	return d
}

// OperatorStat is one row of the flattened analyze report.
type OperatorStat struct {
	ID         int
	Op         string
	Calls      int
	Rows       int64
	Time       time.Duration
	Allocs     int64
	Batches    int
	Bytes      int64
	Spilled    int64
	Skipped    int64
	Workers    int
	Partitions int
}

// Operators flattens a plan and its run stats into report rows in
// preorder (plan) order.
func Operators(root *Node, rs *RunStats) []OperatorStat {
	var out []OperatorStat
	Walk(root, func(n *Node) {
		s := rs.Node(n.ID)
		name := n.OpName()
		if d := n.Detail(); d != "" {
			name += " [" + d + "]"
		}
		out = append(out, OperatorStat{
			ID:         n.ID,
			Op:         name,
			Calls:      s.Calls,
			Rows:       s.Rows,
			Time:       s.Time,
			Allocs:     s.Allocs,
			Batches:    s.Batches,
			Bytes:      s.Bytes,
			Spilled:    s.Spilled,
			Skipped:    s.Skipped,
			Workers:    s.Workers,
			Partitions: s.Partitions,
		})
	})
	return out
}
