// Package plan defines the physical-plan IR shared by the whole query
// path: the compiler in internal/core lowers a core expression into a
// tree of typed operator nodes, the executor dispatches each node to the
// materializing engine or the streaming pipeline backend, and
// internal/sqlgen emits the paper's single-statement SQL translation from
// the very same tree. There is exactly one plan shape per (mode,
// pipelining) variant, and it is the one that runs — Explain renders the
// executed plan, not a parallel description of it.
//
// Nodes carry the static annotations the paper's Section 4.3 analysis
// provides — the local key-digit width of every operator's output — plus
// an order-of-magnitude cardinality hint and the Streamable property that
// drives the engine-vs-pipeline dispatch. Nodes are immutable after
// compilation (compiled plans are cached and shared across concurrent
// executions); per-run actuals live in a RunStats indexed by Node.ID.
package plan

import (
	"fmt"
	"strings"

	"dixq/internal/interval"
	"dixq/internal/xmltree"
)

// Op identifies a physical operator.
type Op int

// The operator set. The first group produces relations (interval-encoded
// forests, one per environment); the Cmp/Empty/Contains/Not/And/Or group
// produces one boolean per environment and appears only under OpFilter or
// as a merge-join residual.
const (
	// OpInvalid marks an expression the compiler could not lower (unknown
	// function or node type); executing it reports Label as the error.
	OpInvalid Op = iota
	// OpScan reads the interval encoding of document Label. At Depth > 0
	// the executor embeds the document into the current environments.
	OpScan
	// OpConst replicates the literal forest Value into every environment.
	OpConst
	// OpVar reads variable Label, bound at the current depth.
	OpVar
	// OpEmbedOuter reads variable Label bound at FromDepth < Depth,
	// embedding it into the finer environments (the T'_e_i views of §4.2).
	OpEmbedOuter
	// OpLet binds Label to Inputs[0] while evaluating Inputs[1].
	OpLet
	// OpFilter is the conditional template (§4.2.3): Inputs[0] is the
	// predicate, Inputs[1] the body evaluated under the filtered index.
	OpFilter
	// OpBindVar is the literal iteration template (§4.2.4): the for-loop
	// entry that binds Label (and position Pos) over domain Inputs[0] and
	// evaluates body Inputs[1] in the extended environments.
	OpBindVar
	// OpMSJ is the decorrelated §5 evaluation of a for-loop: Inputs are
	// [domain, outer-key, inner-key, body]. The domain runs once at depth
	// D0; both key sides are sorted structurally and merge-joined; the
	// body (already wrapped in an OpFilter for residual conjuncts) runs
	// over the rebuilt matching environments.
	OpMSJ
	// OpRoots keeps root tuples (Algorithm 5.2).
	OpRoots
	// OpPathStep is one of the remaining order-preserving unary path
	// operators, named by Step (select carries its label in Label).
	OpPathStep
	// OpStructuralSort reorders top-level trees into structural order.
	OpStructuralSort
	// OpReverse reverses the top-level tree order.
	OpReverse
	// OpDistinct keeps the first of structurally equal trees.
	OpDistinct
	// OpSubtreesDFS enumerates every subtree in DFS order.
	OpSubtreesDFS
	// OpConstruct wraps each environment's forest under a Label node.
	OpConstruct
	// OpConcat concatenates Inputs[0] and Inputs[1] per environment.
	OpConcat
	// OpCount yields each environment's top-level tree count as text.
	OpCount
	// OpAggregate reduces each environment's numeric root labels to one
	// text atom; Label names the aggregate (sum, avg, min, max). sum
	// yields "0" for environments without numeric roots; the others
	// yield nothing there.
	OpAggregate
	// OpArith applies the binary arithmetic operator Label (+, -, *,
	// div) to the first root labels of Inputs[0] and Inputs[1] per
	// environment; an empty side yields nothing.
	OpArith
	// OpTake keeps each environment's first N top-level trees; Label
	// carries the decimal N.
	OpTake
	// OpDrop removes each environment's first N top-level trees; Label
	// carries the decimal N.
	OpDrop
	// OpOrderBy stably reorders each environment's #ord wrapper trees by
	// their #key parts under the xnum value ordering; Label is the
	// direction (asc or desc).
	OpOrderBy
	// OpCmpEq is structural (deep) equality of Inputs[0] and Inputs[1].
	OpCmpEq
	// OpCmpLess is strict structural order of Inputs[0] before Inputs[1].
	OpCmpLess
	// OpCmpVal is the existential value comparison: some root label of
	// Inputs[0] is value-less than some root label of Inputs[1].
	OpCmpVal
	// OpEmptyTest tests Inputs[0] for emptiness per environment.
	OpEmptyTest
	// OpContainsTest is substring containment of string values.
	OpContainsTest
	// OpNot negates Inputs[0].
	OpNot
	// OpAnd conjoins Inputs[0] and Inputs[1].
	OpAnd
	// OpOr disjoins Inputs[0] and Inputs[1].
	OpOr
	// OpIndexPath serves a depth-0 path chain from a document's structural
	// index: Seek carries the resolved row ranges (or the pruned-empty
	// proof) and Inputs[0] is the original scan-backed chain, kept as the
	// runtime fallback for environments the index does not describe.
	OpIndexPath
)

// Step names for OpPathStep, matching the XFn operator names.
const (
	StepSelect   = "select"
	StepSelText  = "seltext"
	StepChildren = "children"
	StepData     = "data"
	StepHead     = "head"
	StepTail     = "tail"
)

// Access-path values recorded on source nodes by the compiler's index
// rewrite, rendered by Explain and reported per node in analyze output.
const (
	// AccessScan marks a document source left as a full relation scan.
	AccessScan = "scan"
	// AccessIndex marks a path chain served as index range reads.
	AccessIndex = "index"
	// AccessPruned marks a chain the dataguide proved empty.
	AccessPruned = "pruned"
)

// Seek is the compile-time resolution of a path chain against a document's
// structural index: the exact row ranges of the answer forest, or the proof
// that it is empty. The executor serves it only after re-checking that the
// runtime document binding is the very relation the ranges index into
// (pointer identity); otherwise it falls back to the scan-backed chain.
type Seek struct {
	// Doc is the document name whose binding must match Rel.
	Doc string
	// Path renders the resolved chain for Explain, e.g. "/site/people".
	Path string
	// Rel is the relation the ranges index into.
	Rel *interval.Relation
	// Ranges are sorted disjoint [start, end) row ranges of the answer.
	Ranges [][2]int32
	// Rows is the total rows covered by Ranges.
	Rows int64
	// Pruned reports a dataguide-proven empty answer (Ranges is nil).
	Pruned bool
	// WidenBy counts the subtrees-dfs operators between the document scan
	// and this node: each widens the local key width by one digit, and a
	// pruned node must report the widened width for its (empty) output so
	// downstream construction keeps digit-identical keys.
	WidenBy int
}

// Node is one operator of a compiled physical plan. A Node and its
// subtree are immutable after compilation; concurrent executions of the
// same plan share the tree and record actuals into their own RunStats.
type Node struct {
	// ID is the node's preorder position in its plan, the index into
	// RunStats.Nodes. Assigned once by the compiler.
	ID int
	// Op is the operator.
	Op Op
	// Step names the path operator for OpPathStep.
	Step string
	// Label is the operator's string argument: document name (OpScan),
	// variable name (OpVar/OpEmbedOuter/OpLet/OpBindVar/OpMSJ), selection
	// or construction label (OpPathStep select, OpConstruct).
	Label string
	// Pos is the positional variable of a loop ("" if none).
	Pos string
	// Value is the literal forest of OpConst.
	Value xmltree.Forest
	// Digits is the inferred local key width of the output — the number
	// of key digits encoding positions within one environment (§4.3).
	// Zero for predicate operators.
	Digits int
	// Depth is the static environment depth at which the node runs.
	Depth int
	// FromDepth is the static binding depth of an OpEmbedOuter source.
	FromDepth int
	// D0 is the static domain depth of an OpMSJ (the loop-invariance
	// level); the executor recomputes the runtime value from DomainVars.
	D0 int
	// DomainVars lists the free variables of an OpMSJ domain (documents
	// excluded); the executor takes the maximum of their binding depths
	// as the runtime d0.
	DomainVars []string
	// Card is an order-of-magnitude output-cardinality hint in tuples,
	// computed against a nominal 1000-tuple document; -1 when unknown.
	// It is a planning hint, not a promise.
	Card int64
	// Est is the cost-based optimizer's estimated output rows, computed
	// against real per-document statistics (internal/stats); -1 when the
	// plan was not optimized (forced modes, no stats). Analyze output
	// renders it next to the actual row count (est=… act=…) so
	// misestimates are visible per operator.
	Est int64
	// Streamable marks nodes the streaming pipeline backend can execute;
	// the executor runs maximal Streamable chains as one fused pass.
	Streamable bool
	// ParallelSafe marks operators the parallel runtime can split across
	// workers (morsel-parallel fused chains, parallel structural sorts,
	// concurrent merge-join sort phases). A static capability mark: whether
	// a run fans out depends on Options.Parallelism and the input size.
	ParallelSafe bool
	// Seek is the index resolution of an OpIndexPath node.
	Seek *Seek
	// Access is the compiler's access-path decision for source nodes:
	// AccessScan, AccessIndex or AccessPruned ("" for non-sources).
	Access string
	// Inputs are the child plans, in the per-operator order documented
	// on the Op constants.
	Inputs []*Node
}

// IsPredicate reports whether the node produces per-environment booleans
// rather than a relation.
func (n *Node) IsPredicate() bool {
	switch n.Op {
	case OpCmpEq, OpCmpLess, OpCmpVal, OpEmptyTest, OpContainsTest, OpNot, OpAnd, OpOr:
		return true
	}
	return false
}

// OpName returns the operator's display name.
func (n *Node) OpName() string {
	switch n.Op {
	case OpInvalid:
		return "invalid"
	case OpScan:
		return "scan"
	case OpConst:
		return "const"
	case OpVar:
		return "var"
	case OpEmbedOuter:
		return "embed-outer"
	case OpLet:
		return "let"
	case OpFilter:
		return "filter"
	case OpBindVar:
		return "for-nested-loop"
	case OpMSJ:
		return "for-merge-join"
	case OpRoots:
		return "roots"
	case OpPathStep:
		return n.Step
	case OpStructuralSort:
		return "structural-sort"
	case OpReverse:
		return "reverse"
	case OpDistinct:
		return "distinct"
	case OpSubtreesDFS:
		return "subtrees-dfs"
	case OpConstruct:
		return "construct"
	case OpConcat:
		return "concat"
	case OpCount:
		return "count"
	case OpAggregate:
		return "aggregate-" + n.Label
	case OpArith:
		return "arith(" + n.Label + ")"
	case OpTake:
		return "take"
	case OpDrop:
		return "drop"
	case OpOrderBy:
		return "order-by"
	case OpCmpEq:
		return "deep-compare(=)"
	case OpCmpLess:
		return "deep-compare(<)"
	case OpCmpVal:
		return "value-compare(<)"
	case OpEmptyTest:
		return "empty"
	case OpContainsTest:
		return "contains"
	case OpNot:
		return "not"
	case OpAnd:
		return "and"
	case OpOr:
		return "or"
	case OpIndexPath:
		if n.Seek != nil && n.Seek.Pruned {
			return "index-prune"
		}
		return "index-seek"
	default:
		return fmt.Sprintf("op(%d)", int(n.Op))
	}
}

// Detail returns the operator's rendered argument ("" if none).
func (n *Node) Detail() string {
	switch n.Op {
	case OpScan:
		return fmt.Sprintf("document(%q)", n.Label)
	case OpConst:
		return fmt.Sprintf("%d nodes", n.Value.Size())
	case OpVar:
		return "$" + n.Label
	case OpEmbedOuter:
		return fmt.Sprintf("$%s (depth %d -> %d)", n.Label, n.FromDepth, n.Depth)
	case OpLet:
		return "$" + n.Label
	case OpBindVar, OpMSJ:
		if n.Pos != "" {
			return fmt.Sprintf("$%s at $%s", n.Label, n.Pos)
		}
		return "$" + n.Label
	case OpPathStep:
		if n.Step == StepSelect {
			return n.Label
		}
		return ""
	case OpConstruct:
		return n.Label
	case OpTake, OpDrop:
		return n.Label
	case OpOrderBy:
		return n.Label
	case OpInvalid:
		return n.Label
	case OpIndexPath:
		if n.Seek == nil {
			return ""
		}
		if n.Seek.Pruned {
			return fmt.Sprintf("document(%q)%s: no such path", n.Seek.Doc, n.Seek.Path)
		}
		return fmt.Sprintf("document(%q)%s: %d ranges, %d rows",
			n.Seek.Doc, n.Seek.Path, len(n.Seek.Ranges), n.Seek.Rows)
	default:
		return ""
	}
}

// inputLabels returns the per-child role names for multi-role operators,
// or nil when children are positionally obvious.
func (n *Node) inputLabels() []string {
	switch n.Op {
	case OpLet:
		return []string{"value", "body"}
	case OpFilter:
		return []string{"pred", "body"}
	case OpBindVar:
		return []string{"domain", "body"}
	case OpMSJ:
		return []string{"domain", "outer-key", "inner-key", "body"}
	case OpIndexPath:
		return []string{"fallback"}
	}
	return nil
}

// Tree renders the plan as an indented operator tree with its static
// annotations (digits, cardinality hints, streamability).
func (n *Node) Tree() string {
	var b strings.Builder
	n.write(&b, 0, "", nil)
	return b.String()
}

// TreeWithStats renders the executed plan annotated with the per-node
// actuals of one run — the analyze form of Explain.
func (n *Node) TreeWithStats(rs *RunStats) string {
	var b strings.Builder
	n.write(&b, 0, "", rs)
	return b.String()
}

func (n *Node) write(b *strings.Builder, indent int, role string, rs *RunStats) {
	for i := 0; i < indent; i++ {
		b.WriteString("  ")
	}
	if role != "" {
		b.WriteString(role)
		b.WriteString(": ")
	}
	b.WriteString(n.OpName())
	if d := n.Detail(); d != "" {
		fmt.Fprintf(b, " [%s]", d)
	}
	if !n.IsPredicate() && n.Op != OpInvalid {
		fmt.Fprintf(b, " {digits: %d", n.Digits)
		if n.Est >= 0 {
			fmt.Fprintf(b, ", est: %d", n.Est)
		} else if n.Card >= 0 {
			fmt.Fprintf(b, ", est: %d", n.Card)
		}
		b.WriteString("}")
	}
	if n.Streamable {
		b.WriteString(" [stream]")
	}
	if n.ParallelSafe {
		b.WriteString(" [par]")
	}
	if n.Access != "" {
		fmt.Fprintf(b, " [access=%s]", n.Access)
	}
	if rs != nil {
		s := rs.Node(n.ID)
		est := n.Card
		if n.Est >= 0 {
			est = n.Est
		}
		// Deterministic actuals first (locked by the analyze goldens; parts
		// depends only on the requested parallelism, so it qualifies), the
		// run-dependent group last so tests can mask it in one pass
		// (workers depends on the process worker budget at run time).
		fmt.Fprintf(b, " (est=%d act=%d calls=%d rows=%d batches=%d spilled=%d skipped=%d parts=%d workers=%d time=%s allocs=%d bytes=%d)",
			est, s.Rows, s.Calls, s.Rows, s.Batches, s.Spilled, s.Skipped, s.Partitions, s.Workers, s.Time, s.Allocs, s.Bytes)
	}
	b.WriteByte('\n')
	labels := n.inputLabels()
	for i, c := range n.Inputs {
		role := ""
		if labels != nil && i < len(labels) {
			role = labels[i]
		}
		c.write(b, indent+1, role, rs)
	}
}

// Walk visits the plan in preorder.
func Walk(n *Node, fn func(*Node)) {
	if n == nil {
		return
	}
	fn(n)
	for _, c := range n.Inputs {
		Walk(c, fn)
	}
}

// MaxID returns the largest node ID in the plan (IDs are dense preorder
// positions, so MaxID+1 is the node count).
func MaxID(n *Node) int {
	m := 0
	Walk(n, func(c *Node) {
		if c.ID > m {
			m = c.ID
		}
	})
	return m
}

// ResetEst marks every node's optimizer estimate unset (-1). The
// compiler calls it once per plan before handing the tree to the
// optimizer, so unoptimized (forced-mode) plans render their nominal
// Card hints rather than a spurious zero estimate.
func ResetEst(n *Node) {
	Walk(n, func(c *Node) { c.Est = -1 })
}

// AssignIDs numbers the plan's nodes in preorder. The compiler calls it
// once; IDs index RunStats.Nodes.
func AssignIDs(n *Node) {
	id := 0
	Walk(n, func(c *Node) {
		c.ID = id
		id++
	})
}

// Documents returns the names of the documents the plan scans, in
// first-occurrence (preorder) order — the order that fixes the doc_N base
// table numbering of the SQL translation.
func Documents(n *Node) []string {
	var names []string
	seen := map[string]bool{}
	Walk(n, func(c *Node) {
		if c.Op == OpScan && !seen[c.Label] {
			seen[c.Label] = true
			names = append(names, c.Label)
		}
	})
	return names
}

// FreeVars returns the variable and document names free in the plan;
// document names are prefixed "doc:", mirroring xq.FreeVars.
func FreeVars(n *Node) map[string]bool {
	out := map[string]bool{}
	collectFree(n, map[string]bool{}, out)
	return out
}

func collectFree(n *Node, bound, out map[string]bool) {
	switch n.Op {
	case OpScan:
		out["doc:"+n.Label] = true
	case OpVar, OpEmbedOuter:
		if !bound[n.Label] {
			out[n.Label] = true
		}
	case OpLet:
		collectFree(n.Inputs[0], bound, out)
		collectFreeUnder(n.Inputs[1], bound, out, n.Label)
		return
	case OpBindVar:
		collectFree(n.Inputs[0], bound, out)
		collectFreeUnder(n.Inputs[1], bound, out, n.Label, n.Pos)
		return
	case OpMSJ:
		collectFree(n.Inputs[0], bound, out)
		collectFree(n.Inputs[1], bound, out)
		collectFreeUnder(n.Inputs[2], bound, out, n.Label, n.Pos)
		collectFreeUnder(n.Inputs[3], bound, out, n.Label, n.Pos)
		return
	}
	for _, c := range n.Inputs {
		collectFree(c, bound, out)
	}
}

func collectFreeUnder(n *Node, bound, out map[string]bool, vars ...string) {
	var added []string
	for _, v := range vars {
		if v != "" && !bound[v] {
			bound[v] = true
			added = append(added, v)
		}
	}
	collectFree(n, bound, out)
	for _, v := range added {
		delete(bound, v)
	}
}
