package interval

import (
	"dixq/internal/xmltree"
)

// EncodeXML shreds XML text directly into its interval encoding, without
// materializing the tree: the scanner's event stream drives the Example
// 3.2 depth-first counter. For large documents this halves allocations
// versus Parse followed by Encode while producing an identical relation.
func EncodeXML(src string) (*Relation, error) {
	// Pre-size by a rough nodes-per-byte estimate to avoid growth copies.
	s := &shredder{rel: &Relation{Tuples: make([]Tuple, 0, len(src)/24+8)}}
	if err := xmltree.Scan(src, false, s); err != nil {
		return nil, err
	}
	return s.rel, nil
}

// shredder implements xmltree.Handler, assigning l on entry and r on exit
// with one incrementing counter.
type shredder struct {
	rel     *Relation
	counter int64
	stack   []int // open tuple indexes
}

func (s *shredder) open(label string) int {
	idx := len(s.rel.Tuples)
	s.rel.Tuples = append(s.rel.Tuples, Tuple{S: label, L: Key{s.counter}})
	s.counter++
	return idx
}

func (s *shredder) close(idx int) {
	s.rel.Tuples[idx].R = Key{s.counter}
	s.counter++
}

func (s *shredder) StartElement(name string) {
	s.stack = append(s.stack, s.open("<"+name+">"))
}

func (s *shredder) Attribute(name, value string) {
	idx := s.open("@" + name)
	if value != "" {
		s.close(s.open(value))
	}
	s.close(idx)
}

func (s *shredder) Text(data string) {
	s.close(s.open(data))
}

func (s *shredder) EndElement(string) {
	idx := s.stack[len(s.stack)-1]
	s.stack = s.stack[:len(s.stack)-1]
	s.close(idx)
}
