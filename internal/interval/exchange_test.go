package interval

import (
	"math/rand"
	"slices"
	"testing"

	"dixq/internal/exec"
)

// exchangeCheck merges the runs through ExchangeMerge at several
// parallelism values and compares each result against a serial sort of
// the concatenated input. keys maps positions to sort keys; the
// comparator tie-breaks on position, so it is strict like SortPerm's.
func exchangeCheck(t *testing.T, keys []int, runs [][]int) {
	t.Helper()
	cmp := func(a, b int) int {
		if v := keys[a] - keys[b]; v != 0 {
			return v
		}
		return a - b
	}
	n := 0
	var all []int
	for _, run := range runs {
		if !slices.IsSortedFunc(run, cmp) {
			t.Fatal("test bug: input run not sorted")
		}
		n += len(run)
		all = append(all, run...)
	}
	slices.SortFunc(all, cmp)
	for _, par := range []int{1, 2, 3, 4, 7, 16} {
		out := make([]int, n)
		ExchangeMerge(out, runs, par, cmp)
		if !slices.Equal(out, all) {
			t.Fatalf("parallelism %d: got %v, want %v", par, out, all)
		}
	}
}

func TestExchangeMergeBasic(t *testing.T) {
	keys := []int{5, 1, 9, 3, 7, 2, 8, 4, 6, 0}
	exchangeCheck(t, keys, [][]int{{1, 3, 0}, {5, 7, 4}, {9, 8, 2}})
	exchangeCheck(t, keys, [][]int{{9, 1, 5, 3, 7, 0, 8, 4, 6, 2}})
	exchangeCheck(t, keys, nil)
	exchangeCheck(t, keys, [][]int{{}, {}, {}})
}

// TestExchangeMergeEmptyAndSkewedRuns drives the splitter sampling into
// empty partitions: one giant run plus empty and single-element runs
// means most sampled splitters collide, leaving some partitions with no
// elements. Content must be unaffected.
func TestExchangeMergeEmptyAndSkewedRuns(t *testing.T) {
	keys := make([]int, 64)
	for i := range keys {
		keys[i] = i / 8 // long duplicate plateaus
	}
	big := make([]int, 0, 60)
	for i := 4; i < 64; i++ {
		big = append(big, i)
	}
	exchangeCheck(t, keys, [][]int{big, {}, {0}, {}, {1, 2, 3}})
	// All-equal keys: every splitter is the same key; partitions degenerate
	// to one nonempty region.
	eq := make([]int, 64)
	exchangeCheck(t, eq, [][]int{big, {0, 1, 2, 3}})
}

// TestExchangeMergeDuplicateBoundaries puts the partition boundary
// exactly on a run of duplicate keys: positions sharing a key are split
// across partitions by the position tie-break, and the merged order must
// still be the unique total order.
func TestExchangeMergeDuplicateBoundaries(t *testing.T) {
	keys := make([]int, 40)
	for i := range keys {
		keys[i] = 1 // one duplicate plateau spanning everything
	}
	a := []int{0, 2, 4, 6, 8, 10, 12, 14, 16, 18}
	b := []int{1, 3, 5, 7, 9, 11, 13, 15, 17, 19}
	c := []int{20, 21, 22, 23, 24, 25, 26, 27, 28, 29}
	d := []int{30, 31, 32, 33, 34, 35, 36, 37, 38, 39}
	exchangeCheck(t, keys, [][]int{a, b, c, d})
}

func TestExchangeMergeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(20030609))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(400)
		keys := make([]int, n)
		for i := range keys {
			keys[i] = rng.Intn(max(1, n/4)) // heavy duplicates
		}
		cmp := func(a, b int) int {
			if v := keys[a] - keys[b]; v != 0 {
				return v
			}
			return a - b
		}
		perm := rng.Perm(n)
		nruns := 1 + rng.Intn(6)
		runs := make([][]int, nruns)
		for i, p := range perm {
			r := i % nruns
			runs[r] = append(runs[r], p)
		}
		for _, run := range runs {
			slices.SortFunc(run, cmp)
		}
		exchangeCheck(t, keys, runs)
	}
}

// TestSortPermExchangeIdentity pins the full SortPerm path: the parallel
// chunk-sort + exchange-merge result must be identical to the serial sort
// at every parallelism, including under a zero worker budget (all
// partitions merged by the caller).
func TestSortPermExchangeIdentity(t *testing.T) {
	old := ParallelSortThreshold
	ParallelSortThreshold = 8
	defer func() { ParallelSortThreshold = old }()
	// Raise the worker budget so the exec.Effective clamp does not collapse
	// the higher parallelism values to 2-way on single-core machines.
	prevLim := exec.SetLimit(8)
	defer exec.SetLimit(prevLim)
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{8, 9, 100, 1000} {
		keys := make([]int, n)
		for i := range keys {
			keys[i] = rng.Intn(10)
		}
		cmp := func(a, b int) int { return keys[a] - keys[b] }
		want := SortPerm(n, 1, cmp)
		for _, par := range []int{2, 3, 4, 8} {
			if got := SortPerm(n, par, cmp); !slices.Equal(got, want) {
				t.Fatalf("n=%d parallelism=%d: parallel perm differs from serial", n, par)
			}
		}
		prev := exec.SetLimit(0)
		if got := SortPerm(n, 4, cmp); !slices.Equal(got, want) {
			t.Fatalf("n=%d: zero-budget parallel perm differs from serial", n)
		}
		exec.SetLimit(prev)
	}
}
