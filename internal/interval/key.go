// Package interval implements the interval encoding of XML forests
// (Definition 3.1 of the paper) and the dynamic interval machinery of
// Definition 3.3.
//
// # Keys
//
// The paper models interval endpoints as natural numbers whose magnitude
// grows multiplicatively with every nested for-loop (width w_for = w_e ·
// w_e'). Section 4.3 observes that a practical implementation should
// "allocate a sufficient number of integer-valued attributes at query
// compilation time" instead of using unbounded integers. Key realizes that
// remark directly: an endpoint is a vector of int64 digits compared
// lexicographically, with missing trailing digits reading as zero. The
// paper's arithmetic i·w + v never has to be carried out — entering an
// iteration appends digits, and lexicographic order on the digit vectors
// coincides with numeric order of the scalar encoding.
//
// An environment index (the I relation of Definition 3.3) is also a Key; a
// tuple belongs to environment i exactly when i is a prefix of its L key.
package interval

import "strconv"

// Key is an interval endpoint or environment index: a vector of digits
// ordered lexicographically. Trailing digits that are absent compare as 0,
// so Key{5} and Key{5, 0} are equal. Keys are treated as immutable; use
// Append or Extend to derive new keys.
type Key []int64

// Compare lexicographically compares two keys, treating missing trailing
// digits as zero. It returns -1, 0, or +1.
func Compare(a, b Key) int {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		da, db := a.Digit(i), b.Digit(i)
		if da < db {
			return -1
		}
		if da > db {
			return 1
		}
	}
	return 0
}

// Digit returns the i-th digit, with absent digits reading as zero.
func (k Key) Digit(i int) int64 {
	if i < len(k) {
		return k[i]
	}
	return 0
}

// Equal reports whether two keys are equal under the trailing-zero rule.
func (k Key) Equal(o Key) bool { return Compare(k, o) == 0 }

// Less reports whether k sorts strictly before o.
func (k Key) Less(o Key) bool { return Compare(k, o) < 0 }

// HasPrefix reports whether the first len(p) digits of k equal p. Trailing
// zeros count: Key{5}.HasPrefix(Key{5, 0}) is true.
func (k Key) HasPrefix(p Key) bool {
	for i := range p {
		if k.Digit(i) != p[i] {
			return false
		}
	}
	return true
}

// ComparePrefix compares the first n digits of k with the n-digit prefix p
// (p longer than n is ignored). It is the comparator used to merge tuples
// against an environment index.
func (k Key) ComparePrefix(p Key, n int) int {
	for i := 0; i < n; i++ {
		dk, dp := k.Digit(i), p.Digit(i)
		if dk < dp {
			return -1
		}
		if dk > dp {
			return 1
		}
	}
	return 0
}

// Append returns a new key with extra digits appended. The receiver is not
// modified and shares no storage with the result.
func (k Key) Append(digits ...int64) Key {
	out := make(Key, 0, len(k)+len(digits))
	out = append(out, k...)
	out = append(out, digits...)
	return out
}

// Extend returns a new key of exactly n digits: k zero-padded or truncated.
// Truncation requires the dropped digits to be zero; it panics otherwise,
// because dropping nonzero digits would change the key's value.
func (k Key) Extend(n int) Key {
	out := make(Key, n)
	copy(out, k)
	for i := n; i < len(k); i++ {
		if k[i] != 0 {
			panic("interval: Extend would drop nonzero digit")
		}
	}
	return out
}

// Suffix returns the digits of k after the first n (the "local part" of a
// tuple key relative to an n-digit environment index).
func (k Key) Suffix(n int) Key {
	if n >= len(k) {
		return nil
	}
	return k[n:]
}

// Clone returns a copy of k with its own storage.
func (k Key) Clone() Key {
	if k == nil {
		return nil
	}
	out := make(Key, len(k))
	copy(out, k)
	return out
}

// Norm returns k without trailing zero digits, the canonical representative
// of its equivalence class.
func (k Key) Norm() Key {
	n := len(k)
	for n > 0 && k[n-1] == 0 {
		n--
	}
	return k[:n]
}

// String renders the key as dot-separated digits, e.g. "2.174".
func (k Key) String() string {
	if len(k) == 0 {
		return "0"
	}
	s := strconv.FormatInt(k[0], 10)
	for _, d := range k[1:] {
		s += "." + strconv.FormatInt(d, 10)
	}
	return s
}
