package interval

import (
	"slices"

	"dixq/internal/exec"
)

// ParallelSortThreshold is the minimum input length for which SortPerm
// splits work across goroutines; below it the parallel setup costs more
// than it saves. It is a variable so tests and benchmarks can force the
// parallel path on small inputs.
var ParallelSortThreshold = 2048

// SortPerm returns a permutation of [0, n) ordering positions by cmp,
// stably: positions comparing equal keep their original relative order.
// With parallelism > 1 and n at or above ParallelSortThreshold the
// positions are sorted in concurrent chunks and pairwise-merged; cmp must
// then be safe for concurrent calls (pure comparators over shared
// read-only data are). The result is identical at any parallelism.
//
// This is the engine's one structural-sort kernel: Relation.SortP, the
// flat columnar sort, SortTrees/Distinct tree ordering and the MSJ sort
// phase all go through it.
func SortPerm(n, parallelism int, cmp func(a, b int) int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Index order breaks ties, which both makes the sort stable and keeps
	// the chunk merges deterministic.
	c := func(a, b int) int {
		if v := cmp(a, b); v != 0 {
			return v
		}
		return a - b
	}
	par := exec.Effective(parallelism)
	if par < 2 || n < ParallelSortThreshold {
		slices.SortFunc(order, c)
		return order
	}
	parallelSortPerm(order, c, par)
	return order
}

// parallelSortPerm sorts positions with concurrently sorted chunks
// followed by an exchange repartitioning: sampled splitters cut the key
// space into one region per worker and every region k-way merges
// concurrently (see exchange.go), instead of pairwise merge rounds whose
// final round was one serial merge over the whole input. Chunk boundaries
// and splitters depend only on the input and the budget-clamped
// parallelism (exec.Effective) — never on how many workers a Run call is
// actually granted — so the merged result is bit-identical at any grant,
// and the worker goroutines themselves come from the shared exec pool.
func parallelSortPerm(order []int, cmp func(a, b int) int, parallelism int) {
	chunk := (len(order) + parallelism - 1) / parallelism
	var chunks [][]int
	for lo := 0; lo < len(order); lo += chunk {
		hi := min(lo+chunk, len(order))
		chunks = append(chunks, order[lo:hi])
	}
	exec.Run(len(chunks), parallelism, func(task, worker int) {
		slices.SortFunc(chunks[task], cmp)
	})
	merged := make([]int, len(order))
	ExchangeMerge(merged, chunks, parallelism, cmp)
	copy(order, merged)
}
