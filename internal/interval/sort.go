package interval

import (
	"slices"
	"sync"
)

// ParallelSortThreshold is the minimum input length for which SortPerm
// splits work across goroutines; below it the parallel setup costs more
// than it saves. It is a variable so tests and benchmarks can force the
// parallel path on small inputs.
var ParallelSortThreshold = 2048

// SortPerm returns a permutation of [0, n) ordering positions by cmp,
// stably: positions comparing equal keep their original relative order.
// With parallelism > 1 and n at or above ParallelSortThreshold the
// positions are sorted in concurrent chunks and pairwise-merged; cmp must
// then be safe for concurrent calls (pure comparators over shared
// read-only data are). The result is identical at any parallelism.
//
// This is the engine's one structural-sort kernel: Relation.SortP, the
// flat columnar sort, SortTrees/Distinct tree ordering and the MSJ sort
// phase all go through it.
func SortPerm(n, parallelism int, cmp func(a, b int) int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Index order breaks ties, which both makes the sort stable and keeps
	// the chunk merges deterministic.
	c := func(a, b int) int {
		if v := cmp(a, b); v != 0 {
			return v
		}
		return a - b
	}
	if parallelism < 2 || n < ParallelSortThreshold {
		slices.SortFunc(order, c)
		return order
	}
	parallelSortPerm(order, c, parallelism)
	return order
}

// parallelSortPerm sorts positions with concurrently sorted chunks
// followed by pairwise merge rounds.
func parallelSortPerm(order []int, cmp func(a, b int) int, parallelism int) {
	chunk := (len(order) + parallelism - 1) / parallelism
	var chunks [][]int
	for lo := 0; lo < len(order); lo += chunk {
		hi := min(lo+chunk, len(order))
		chunks = append(chunks, order[lo:hi])
	}
	var wg sync.WaitGroup
	for _, c := range chunks {
		wg.Add(1)
		go func(c []int) {
			defer wg.Done()
			slices.SortFunc(c, cmp)
		}(c)
	}
	wg.Wait()
	for len(chunks) > 1 {
		var next [][]int
		for i := 0; i < len(chunks); i += 2 {
			if i+1 == len(chunks) {
				next = append(next, chunks[i])
				break
			}
			next = append(next, mergePerm(chunks[i], chunks[i+1], cmp))
		}
		chunks = next
	}
	copy(order, chunks[0])
}

func mergePerm(a, b []int, cmp func(x, y int) int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if cmp(b[j], a[i]) < 0 {
			out = append(out, b[j])
			j++
		} else {
			out = append(out, a[i])
			i++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
