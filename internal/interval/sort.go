package interval

import (
	"slices"

	"dixq/internal/exec"
)

// ParallelSortThreshold is the minimum input length for which SortPerm
// splits work across goroutines; below it the parallel setup costs more
// than it saves. It is a variable so tests and benchmarks can force the
// parallel path on small inputs.
var ParallelSortThreshold = 2048

// SortPerm returns a permutation of [0, n) ordering positions by cmp,
// stably: positions comparing equal keep their original relative order.
// With parallelism > 1 and n at or above ParallelSortThreshold the
// positions are sorted in concurrent chunks and pairwise-merged; cmp must
// then be safe for concurrent calls (pure comparators over shared
// read-only data are). The result is identical at any parallelism.
//
// This is the engine's one structural-sort kernel: Relation.SortP, the
// flat columnar sort, SortTrees/Distinct tree ordering and the MSJ sort
// phase all go through it.
func SortPerm(n, parallelism int, cmp func(a, b int) int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Index order breaks ties, which both makes the sort stable and keeps
	// the chunk merges deterministic.
	c := func(a, b int) int {
		if v := cmp(a, b); v != 0 {
			return v
		}
		return a - b
	}
	if parallelism < 2 || n < ParallelSortThreshold {
		slices.SortFunc(order, c)
		return order
	}
	parallelSortPerm(order, c, parallelism)
	return order
}

// parallelSortPerm sorts positions with concurrently sorted chunks
// followed by merge rounds whose pairwise merges also run concurrently.
// Chunk boundaries depend only on the input length and the requested
// parallelism — never on how many workers the process budget actually
// grants — so the merged result is bit-identical at any grant, and the
// worker goroutines themselves come from the shared exec pool.
func parallelSortPerm(order []int, cmp func(a, b int) int, parallelism int) {
	chunk := (len(order) + parallelism - 1) / parallelism
	var chunks [][]int
	for lo := 0; lo < len(order); lo += chunk {
		hi := min(lo+chunk, len(order))
		chunks = append(chunks, order[lo:hi])
	}
	exec.Run(len(chunks), parallelism, func(task, worker int) {
		slices.SortFunc(chunks[task], cmp)
	})
	for len(chunks) > 1 {
		pairs := len(chunks) / 2
		next := make([][]int, (len(chunks)+1)/2)
		if len(chunks)%2 == 1 {
			next[pairs] = chunks[len(chunks)-1]
		}
		exec.Run(pairs, parallelism, func(task, worker int) {
			next[task] = mergePerm(chunks[2*task], chunks[2*task+1], cmp)
		})
		chunks = next
	}
	copy(order, chunks[0])
}

func mergePerm(a, b []int, cmp func(x, y int) int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if cmp(b[j], a[i]) < 0 {
			out = append(out, b[j])
			j++
		} else {
			out = append(out, a[i])
			i++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
