package interval

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestCompare(t *testing.T) {
	tests := []struct {
		a, b Key
		want int
	}{
		{nil, nil, 0},
		{Key{0}, nil, 0},
		{Key{5}, Key{5, 0}, 0},
		{Key{5}, Key{5, 0, 0}, 0},
		{Key{5}, Key{5, 1}, -1},
		{Key{5, 1}, Key{5}, 1},
		{Key{1, 9}, Key{2}, -1},
		{Key{2, 174}, Key{2, 175}, -1},
		{Key{2, 174}, Key{24}, -1},
		{Key{-1}, Key{0}, -1},
	}
	for _, tt := range tests {
		if got := Compare(tt.a, tt.b); got != tt.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
		if got := Compare(tt.b, tt.a); got != -tt.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", tt.b, tt.a, got, -tt.want)
		}
		if (Compare(tt.a, tt.b) == 0) != tt.a.Equal(tt.b) {
			t.Errorf("Equal(%v, %v) disagrees with Compare", tt.a, tt.b)
		}
		if (Compare(tt.a, tt.b) < 0) != tt.a.Less(tt.b) {
			t.Errorf("Less(%v, %v) disagrees with Compare", tt.a, tt.b)
		}
	}
}

func TestHasPrefix(t *testing.T) {
	tests := []struct {
		k, p Key
		want bool
	}{
		{Key{2, 174}, Key{2}, true},
		{Key{2, 174}, Key{2, 174}, true},
		{Key{2, 174}, Key{2, 175}, false},
		{Key{2, 174}, Key{3}, false},
		{Key{5}, Key{5, 0}, true}, // trailing zeros count
		{Key{5}, Key{5, 1}, false},
		{Key{5}, nil, true},
		{nil, Key{0, 0}, true},
	}
	for _, tt := range tests {
		if got := tt.k.HasPrefix(tt.p); got != tt.want {
			t.Errorf("%v.HasPrefix(%v) = %v, want %v", tt.k, tt.p, got, tt.want)
		}
	}
}

func TestComparePrefix(t *testing.T) {
	if got := (Key{2, 174}).ComparePrefix(Key{2, 175}, 1); got != 0 {
		t.Errorf("ComparePrefix n=1 = %d, want 0", got)
	}
	if got := (Key{2, 174}).ComparePrefix(Key{2, 175}, 2); got != -1 {
		t.Errorf("ComparePrefix n=2 = %d, want -1", got)
	}
	if got := (Key{3}).ComparePrefix(Key{2, 175}, 2); got != 1 {
		t.Errorf("ComparePrefix n=2 = %d, want 1", got)
	}
}

func TestAppendExtendSuffix(t *testing.T) {
	k := Key{1, 2}
	k2 := k.Append(3)
	if !k2.Equal(Key{1, 2, 3}) || !k.Equal(Key{1, 2}) {
		t.Errorf("Append mutated receiver or produced %v", k2)
	}
	if got := k.Extend(4); len(got) != 4 || !got.Equal(k) {
		t.Errorf("Extend = %v", got)
	}
	if got := (Key{1, 0, 0}).Extend(1); !got.Equal(Key{1}) {
		t.Errorf("Extend truncating zeros = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Extend dropping nonzero digit should panic")
		}
	}()
	_ = Key{1, 2}.Extend(1)
}

func TestSuffixNormClone(t *testing.T) {
	k := Key{1, 2, 3}
	if got := k.Suffix(1); !got.Equal(Key{2, 3}) {
		t.Errorf("Suffix = %v", got)
	}
	if got := k.Suffix(5); got != nil {
		t.Errorf("Suffix beyond length = %v", got)
	}
	if got := (Key{1, 2, 0, 0}).Norm(); len(got) != 2 {
		t.Errorf("Norm = %v", got)
	}
	c := k.Clone()
	c[0] = 9
	if k[0] != 1 {
		t.Error("Clone shares storage")
	}
	if (Key)(nil).Clone() != nil {
		t.Error("Clone(nil) != nil")
	}
}

func TestKeyString(t *testing.T) {
	if got := (Key{2, 174}).String(); got != "2.174" {
		t.Errorf("String = %q", got)
	}
	if got := (Key{}).String(); got != "0" {
		t.Errorf("empty String = %q", got)
	}
}

// TestLexOrderMatchesScalarOrder verifies the central claim behind the Key
// representation: for digit vectors whose digits are bounded by a common
// width w, lexicographic order equals numeric order of the scalar value
// d0·w^(n-1) + d1·w^(n-2) + ... + dn-1, i.e. the paper's i·w + l arithmetic.
func TestLexOrderMatchesScalarOrder(t *testing.T) {
	const w = 7
	cfg := &quick.Config{MaxCount: 2000}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		a, b := make(Key, n), make(Key, n)
		var va, vb int64
		for i := 0; i < n; i++ {
			a[i], b[i] = int64(rng.Intn(w)), int64(rng.Intn(w))
			va = va*w + a[i]
			vb = vb*w + b[i]
		}
		lex := Compare(a, b)
		num := 0
		if va < vb {
			num = -1
		} else if va > vb {
			num = 1
		}
		return lex == num
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSortingKeysIsConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	keys := make([]Key, 200)
	for i := range keys {
		n := 1 + rng.Intn(3)
		k := make(Key, n)
		for j := range k {
			k[j] = int64(rng.Intn(4))
		}
		keys[i] = k
	}
	sort.Slice(keys, func(i, j int) bool { return Compare(keys[i], keys[j]) < 0 })
	for i := 1; i < len(keys); i++ {
		if Compare(keys[i-1], keys[i]) > 0 {
			t.Fatalf("not sorted at %d: %v > %v", i, keys[i-1], keys[i])
		}
	}
}
