package interval

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"dixq/internal/xmltree"
)

const figure1 = `<site>
 <people>
  <person id="person0">
   <name>Jaak Tempesti</name>
   <emailaddress>mailto:Tempesti@labs.com</emailaddress>
   <phone>+0 (873) 14873867</phone>
   <homepage>http://www.labs.com/~Tempesti</homepage>
  </person>
  <person id="person1">
   <name>Cong Rosca</name>
   <emailaddress>mailto:Rosca@washington.edu</emailaddress>
   <phone>+0 (64) 27711230</phone>
   <homepage>http://www.washington.edu/~Rosca</homepage>
  </person>
 </people>
 <closed_auctions>
  <closed_auction>
   <seller person="person0" />
   <buyer person="person1" />
   <itemref item="item1" />
   <price>42.12</price>
   <date>08/22/1999</date>
   <quantity>1</quantity>
   <type>Regular</type>
  </closed_auction>
 </closed_auctions>
</site>`

func parseFigure1(t *testing.T) xmltree.Forest {
	t.Helper()
	f, err := xmltree.Parse(figure1)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestEncodeFigure4 pins the exact values the paper shows in Figure 4 for
// the depth-first counter encoding of the Figure 1 document.
func TestEncodeFigure4(t *testing.T) {
	rel := Encode(parseFigure1(t))
	want := []struct {
		s    string
		l, r int64
	}{
		{"<site>", 0, 85},
		{"<people>", 1, 46},
		{"<person>", 2, 23},
		{"@id", 3, 6},
		{"person0", 4, 5},
		{"<name>", 7, 10},
		{"Jaak Tempesti", 8, 9},
	}
	for i, w := range want {
		got := rel.Tuples[i]
		if got.S != w.s || !got.L.Equal(Key{w.l}) || !got.R.Equal(Key{w.r}) {
			t.Errorf("tuple %d = %s, want (%q, %d, %d)", i, got, w.s, w.l, w.r)
		}
	}
	if got := rel.Width(); got != 86 {
		t.Errorf("Width = %d, want 86 (as in Example 3.2)", got)
	}
	if rel.Len() != 43 {
		t.Errorf("Len = %d, want 43", rel.Len())
	}
	// Figure 5 also pins the second person: <person> (24, 45).
	p1 := rel.Tuples[13]
	if p1.S != "<person>" || !p1.L.Equal(Key{24}) || !p1.R.Equal(Key{45}) {
		t.Errorf("second person = %s, want (<person>, 24, 45)", p1)
	}
}

func TestEncodeValidates(t *testing.T) {
	rel := Encode(parseFigure1(t))
	if err := Validate(rel); err != nil {
		t.Fatalf("Validate(Encode(fig1)): %v", err)
	}
	if !rel.IsSorted() {
		t.Fatal("Encode output not sorted by L")
	}
}

func TestDecodeRoundTrip(t *testing.T) {
	f := parseFigure1(t)
	got, err := Decode(Encode(f))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(f) {
		t.Fatalf("round trip mismatch:\n got %s\nwant %s", got.String(), f.String())
	}
}

func TestDecodeUnsortedInput(t *testing.T) {
	f := parseFigure1(t)
	rel := Encode(f)
	// Reverse the tuples; Decode must still work.
	for i, j := 0, len(rel.Tuples)-1; i < j; i, j = i+1, j-1 {
		rel.Tuples[i], rel.Tuples[j] = rel.Tuples[j], rel.Tuples[i]
	}
	got, err := Decode(rel)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(f) {
		t.Fatal("decode of shuffled relation mismatch")
	}
}

func TestRoundTripQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		forest := xmltree.RandomForest(rng, 15)
		got, err := Decode(Encode(forest))
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return got.Equal(forest)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestEncodingWithGapsDecodes checks that Decode only relies on the order
// relationships of Definition 3.1, not on tight or contiguous values: any
// order-preserving stretching of the endpoints decodes to the same forest.
func TestEncodingWithGapsDecodes(t *testing.T) {
	f := parseFigure1(t)
	rel := Encode(f)
	stretched := &Relation{}
	for _, tp := range rel.Tuples {
		stretched.Tuples = append(stretched.Tuples, Tuple{
			S: tp.S,
			L: Key{tp.L[0]*7 + 3},
			R: Key{tp.R[0]*7 + 3},
		})
	}
	if err := Validate(stretched); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(stretched)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(f) {
		t.Fatal("stretched encoding decodes differently")
	}
}

func TestMultiDigitEncodingDecodes(t *testing.T) {
	// Two trees in different environments, expressed with 2-digit keys:
	// env 0 holds <a>text</a>, env 3 holds <b/>.
	rel := &Relation{Tuples: []Tuple{
		{S: "<a>", L: Key{0, 0}, R: Key{0, 3}},
		{S: "t", L: Key{0, 1}, R: Key{0, 2}},
		{S: "<b>", L: Key{3, 0}, R: Key{3, 1}},
	}}
	got, err := Decode(rel)
	if err != nil {
		t.Fatal(err)
	}
	want := xmltree.Forest{
		xmltree.NewElement("a", xmltree.NewText("t")),
		xmltree.NewElement("b"),
	}
	if !got.Equal(want) {
		t.Fatalf("got %s, want %s", got.String(), want.String())
	}
}

func TestValidateRejectsBadEncodings(t *testing.T) {
	bad := []struct {
		name string
		rel  *Relation
	}{
		{"l >= r", &Relation{Tuples: []Tuple{{S: "a", L: Key{2}, R: Key{2}}}}},
		{"partial overlap", &Relation{Tuples: []Tuple{
			{S: "a", L: Key{0}, R: Key{4}},
			{S: "b", L: Key{2}, R: Key{6}},
		}}},
		{"shared endpoint l=r", &Relation{Tuples: []Tuple{
			{S: "a", L: Key{0}, R: Key{2}},
			{S: "b", L: Key{2}, R: Key{4}},
		}}},
		{"shared r", &Relation{Tuples: []Tuple{
			{S: "a", L: Key{0}, R: Key{4}},
			{S: "b", L: Key{1}, R: Key{4}},
		}}},
		{"duplicate l", &Relation{Tuples: []Tuple{
			{S: "a", L: Key{0}, R: Key{4}},
			{S: "b", L: Key{0}, R: Key{2}},
		}}},
	}
	for _, tt := range bad {
		if err := Validate(tt.rel); err == nil {
			t.Errorf("%s: Validate accepted invalid encoding", tt.name)
		}
	}
	if _, err := Decode(bad[1].rel); err == nil {
		t.Error("Decode accepted invalid encoding")
	}
}

func TestRelationHelpers(t *testing.T) {
	rel := &Relation{Tuples: []Tuple{
		{S: "b", L: Key{3}, R: Key{4}},
		{S: "a", L: Key{0}, R: Key{1}},
	}}
	if rel.IsSorted() {
		t.Error("IsSorted on unsorted relation")
	}
	clone := rel.Clone()
	rel.Sort()
	if !rel.IsSorted() || rel.Tuples[0].S != "a" {
		t.Errorf("Sort failed: %v", rel.Tuples)
	}
	if clone.Tuples[0].S != "b" {
		t.Error("Clone shares tuple storage with original")
	}
	if !strings.HasPrefix(rel.String(), "a ") {
		t.Errorf("String = %q", rel.String())
	}
	if (&Relation{}).Width() != 0 {
		t.Error("empty Width != 0")
	}
	if MustDecode(rel) == nil {
		t.Error("MustDecode returned nil forest")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustDecode should panic on invalid input")
		}
	}()
	MustDecode(&Relation{Tuples: []Tuple{{S: "x", L: Key{1}, R: Key{1}}}})
}

// TestEncodeXMLMatchesParseEncode: the direct shredder must produce the
// identical relation to Parse followed by Encode, on the worked example
// and on random documents.
func TestEncodeXMLMatchesParseEncode(t *testing.T) {
	check := func(src string) {
		t.Helper()
		direct, err := EncodeXML(src)
		if err != nil {
			t.Fatalf("EncodeXML: %v", err)
		}
		forest, err := xmltree.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		via := Encode(forest)
		if len(direct.Tuples) != len(via.Tuples) {
			t.Fatalf("tuple counts differ: %d vs %d", len(direct.Tuples), len(via.Tuples))
		}
		for i := range via.Tuples {
			a, b := direct.Tuples[i], via.Tuples[i]
			if a.S != b.S || !a.L.Equal(b.L) || !a.R.Equal(b.R) {
				t.Fatalf("tuple %d: %s vs %s", i, a, b)
			}
		}
	}
	check(figure1)
	check(`<a x="1" y=""><b/>text<![CDATA[raw]]></a>`)
	check(`plain text only`)

	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		forest := xmltree.RandomForest(rng, 12)
		src := forest.String()
		direct, err := EncodeXML(src)
		if err != nil {
			return true // inputs with exotic text need not be parseable
		}
		parsed, err := xmltree.Parse(src)
		if err != nil {
			return false
		}
		via := Encode(parsed)
		if len(direct.Tuples) != len(via.Tuples) {
			return false
		}
		for i := range via.Tuples {
			a, b := direct.Tuples[i], via.Tuples[i]
			if a.S != b.S || !a.L.Equal(b.L) || !a.R.Equal(b.R) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestEncodeXMLError(t *testing.T) {
	if _, err := EncodeXML(`<a>`); err == nil {
		t.Error("bad XML should fail")
	}
}
