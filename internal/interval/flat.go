// Flat fixed-width key storage. Section 4.3 of the paper observes that a
// practical implementation should "allocate a sufficient number of
// integer-valued attributes at query compilation time" for interval
// endpoints. The types here realize that remark physically: instead of one
// heap allocation per Key, all L/R digits of a derived relation live in a
// shared []int64 at a fixed stride chosen from the width inference, with
// Keys (and Tuples) as zero-allocation views into the buffer.
//
// Three pieces:
//
//   - KeyArena bump-allocates variable-length keys out of shared chunks —
//     the building block for every derived key.
//   - Builder constructs whole derived relations: every Rebase/Emit call
//     writes the environment prefix and the local digits straight into the
//     shared buffer, so an operator producing n tuples performs O(log n)
//     allocations instead of 2n.
//   - Flat is the columnar view: labels in one slice, digits in another at
//     a fixed stride, with allocation-free positional comparators
//     (CompareAt, ComparePrefixAt) and a parallel structural sort.
package interval

// arenaChunkMin is the minimum capacity (in digits) of a fresh arena chunk.
const arenaChunkMin = 1024

// KeyArena bump-allocates keys out of shared []int64 chunks. Keys returned
// by an arena are ordinary Keys — immutable views into the chunk — so they
// flow through every existing comparator unchanged. The zero value is ready
// to use. An arena must not be used concurrently.
type KeyArena struct {
	chunk []int64 // active chunk; len = used digits, cap = chunk size
}

// alloc reserves a zeroed n-digit slot with its own capacity.
func (a *KeyArena) alloc(n int) Key {
	if n == 0 {
		return nil
	}
	if len(a.chunk)+n > cap(a.chunk) {
		c := 2 * cap(a.chunk)
		if c < arenaChunkMin {
			c = arenaChunkMin
		}
		if c < n {
			c = n
		}
		// Earlier keys keep pointing into the old chunk; nothing is copied.
		a.chunk = make([]int64, 0, c)
	}
	off := len(a.chunk)
	a.chunk = a.chunk[:off+n]
	// The returned key is capacity-capped so appending to it can never
	// clobber the next key in the chunk.
	return Key(a.chunk[off : off+n : off+n])
}

// Alloc reserves a zeroed n-digit key for the caller to fill in before
// handing it out (keys are immutable once shared).
func (a *KeyArena) Alloc(n int) Key { return a.alloc(n) }

// Reserve sizes the next chunk for at least n more digits.
func (a *KeyArena) Reserve(n int) {
	if cap(a.chunk)-len(a.chunk) < n {
		a.chunk = make([]int64, 0, n)
	}
}

// Clone copies a key into the arena.
func (a *KeyArena) Clone(k Key) Key {
	if len(k) == 0 {
		return nil
	}
	out := a.alloc(len(k))
	copy(out, k)
	return out
}

// Rebase builds the key base.Extend(baseLen).Append(k.Suffix(depth)...) in
// the arena: the first baseLen digits come from base (zero-padded), the
// rest are k's digits past depth.
func (a *KeyArena) Rebase(base Key, baseLen int, k Key, depth int) Key {
	n := len(k) - depth
	if n < 0 {
		n = 0
	}
	out := a.alloc(baseLen + n)
	for i := 0; i < baseLen; i++ {
		out[i] = base.Digit(i)
	}
	copy(out[baseLen:], k[len(k)-n:])
	return out
}

// Builder accumulates the tuples of a derived relation whose keys share
// one fixed-stride digit buffer. The stride is the upper bound on key
// length (environment depth plus local width, per the compile-time width
// inference); every key occupies one stride-sized slot, so row i's L and R
// digits sit at offsets 2·i·stride and (2·i+1)·stride. Keys keep their
// exact legacy digit count (the slot's padding stays zero), so builder
// output is digit-for-digit identical to the per-key-allocation layout.
type Builder struct {
	stride int
	arena  KeyArena
	tuples []Tuple
	base   []int64 // active environment prefix, reused across SetBase calls
}

// NewBuilder returns a builder for keys of at most stride digits, sized
// for rows tuples (rows may be 0 when the output size is unknown).
func NewBuilder(stride, rows int) *Builder {
	if stride < 1 {
		stride = 1
	}
	b := &Builder{stride: stride}
	if rows > 0 {
		b.tuples = make([]Tuple, 0, rows)
		b.arena.Reserve(2 * rows * stride)
	}
	return b
}

// Len returns the number of tuples added so far.
func (b *Builder) Len() int { return len(b.tuples) }

// slot reserves one stride-sized key slot and returns its first n digits.
func (b *Builder) slot(n int) Key {
	if n > b.stride {
		// Defensive: a key wider than the inferred stride gets its own
		// exact-size slot; row addressing is lost but nothing breaks.
		return b.arena.alloc(n)
	}
	return b.arena.alloc(b.stride)[:n:n]
}

// SetBase fixes the environment prefix for subsequent Rebase/Emit calls to
// the first depth digits of prefix, zero-padded.
func (b *Builder) SetBase(prefix Key, depth int) {
	if cap(b.base) < depth {
		b.base = make([]int64, 0, max(depth, 8))
	}
	b.base = b.base[:depth]
	for i := range b.base {
		b.base[i] = prefix.Digit(i)
	}
}

// PushBaseDigit appends one digit to the current base — the fresh position
// digit inserted by the renumbering operators (reverse, sort, subtrees).
func (b *Builder) PushBaseDigit(d int64) { b.base = append(b.base, d) }

// key writes base ++ suffix into a fresh slot.
func (b *Builder) key(suffix Key) Key {
	out := b.slot(len(b.base) + len(suffix))
	copy(out, b.base)
	copy(out[len(b.base):], suffix)
	return out
}

// Rebase appends the tuple (s, base++l.Suffix(depth), base++r.Suffix(depth)).
func (b *Builder) Rebase(s string, l, r Key, depth int) {
	b.tuples = append(b.tuples, Tuple{S: s, L: b.key(l.Suffix(depth)), R: b.key(r.Suffix(depth))})
}

// shifted writes base ++ (k.Digit(depth)+delta) ++ k[depth+1:] — the key
// with its first local digit bumped, implicit zeros materialized.
func (b *Builder) shifted(k Key, depth int, delta int64) Key {
	n := len(k) - depth - 1
	if n < 0 {
		n = 0
	}
	out := b.slot(len(b.base) + 1 + n)
	copy(out, b.base)
	out[len(b.base)] = k.Digit(depth) + delta
	copy(out[len(b.base)+1:], k[len(k)-n:])
	return out
}

// RebaseShift is Rebase with the first local digit of both keys bumped by
// delta (the shift used by element construction and concatenation).
func (b *Builder) RebaseShift(s string, l, r Key, depth int, delta int64) {
	b.tuples = append(b.tuples, Tuple{S: s, L: b.shifted(l, depth, delta), R: b.shifted(r, depth, delta)})
}

// Emit appends the tuple (s, base++[ld], base++[rd]) and returns its row,
// for later patching via SetRTail.
func (b *Builder) Emit(s string, ld, rd int64) int {
	row := len(b.tuples)
	l := b.slot(len(b.base) + 1)
	copy(l, b.base)
	l[len(b.base)] = ld
	r := b.slot(len(b.base) + 1)
	copy(r, b.base)
	r[len(b.base)] = rd
	b.tuples = append(b.tuples, Tuple{S: s, L: l, R: r})
	return row
}

// SetRTail overwrites the last digit of row's R key — used by Construct,
// whose root interval closes only after its children are emitted. Valid
// only before Relation hands the tuples out.
func (b *Builder) SetRTail(row int, d int64) {
	r := b.tuples[row].R
	r[len(r)-1] = d
}

// Add appends an existing tuple as-is, sharing its keys (no digit copy).
func (b *Builder) Add(t Tuple) { b.tuples = append(b.tuples, t) }

// Relation hands the accumulated tuples off as a relation. The builder
// must not be reused afterwards.
func (b *Builder) Relation() *Relation { return &Relation{Tuples: b.tuples} }

// Flat is the columnar physical layout of an interval relation: all L and
// R digits in one shared buffer at a fixed stride (keys shorter than the
// stride are zero-padded, which the trailing-zero comparison rule makes
// an identity). Row i's L digits occupy Digits[2·i·Stride : 2·i·Stride+Stride]
// and its R digits the following Stride slots.
//
// Lens optionally records the exact physical digit count of every key
// (Lens[2·i] for L, Lens[2·i+1] for R); nil means every key is a full
// stride. The padding digits beyond a key's length are always zero, so
// comparisons are length-oblivious either way — the lengths exist so that
// Tuple and Relation can hand out keys digit-identical to the row layout
// they were built from, which the batch runtime relies on.
type Flat struct {
	Stride int
	Labels []string
	Digits []int64
	Lens   []int32
	// Orig optionally maps each row to its index in the row-form relation
	// the chunk was filled from. The batch runtime threads it through its
	// filter kernels so the final materialization can hand back the
	// original tuples (aliasing their keys, like the scalar iterators do)
	// instead of cloning digits. Nil when the rows have no row-form origin.
	Orig []int32

	rel *Relation // lazily materialized compatibility view
}

// FlatOf converts a relation to columnar form, preserving exact key
// lengths. The stride is the maximum physical key length (at least 1).
func FlatOf(r *Relation) *Flat {
	stride := 1
	for _, t := range r.Tuples {
		if len(t.L) > stride {
			stride = len(t.L)
		}
		if len(t.R) > stride {
			stride = len(t.R)
		}
	}
	f := NewFlat(stride, len(r.Tuples))
	for _, t := range r.Tuples {
		f.AppendTuple(t)
	}
	return f
}

// NewFlat returns an empty flat relation of the given stride with capacity
// for rows rows — the reusable chunk buffer of the batch runtime.
func NewFlat(stride, rows int) *Flat {
	if stride < 1 {
		stride = 1
	}
	return &Flat{
		Stride: stride,
		Labels: make([]string, 0, rows),
		Digits: make([]int64, 0, 2*stride*rows),
		Lens:   make([]int32, 0, 2*rows),
	}
}

// Restride resets the flat to zero rows at a (possibly different) stride,
// keeping its buffers — the chunk-recycling primitive of the batch
// runtime, where consecutive chains reuse one buffer at their own strides.
func (f *Flat) Restride(stride int) {
	if stride < 1 {
		stride = 1
	}
	f.Stride = stride
	f.Reset()
}

// Reserve grows the column buffers so at least rows rows fit at the
// current stride without further allocation, keeping existing rows. It
// turns the append-doubling a reused chunk would pay after Restride into
// at most one allocation per column.
func (f *Flat) Reserve(rows int) {
	if cap(f.Labels) < rows {
		s := make([]string, len(f.Labels), rows)
		copy(s, f.Labels)
		f.Labels = s
	}
	if n := 2 * rows * f.Stride; cap(f.Digits) < n {
		d := make([]int64, len(f.Digits), n)
		copy(d, f.Digits)
		f.Digits = d
	}
	if n := 2 * rows; cap(f.Lens) < n {
		l := make([]int32, len(f.Lens), n)
		copy(l, f.Lens)
		f.Lens = l
	}
}

// Reset truncates the flat relation to zero rows, keeping its buffers.
func (f *Flat) Reset() {
	f.Labels = f.Labels[:0]
	f.Digits = f.Digits[:0]
	f.Lens = f.Lens[:0]
	if f.Orig != nil {
		f.Orig = f.Orig[:0]
	}
	f.rel = nil
}

// AppendTuple copies one tuple into the next row. Keys longer than the
// stride panic — the caller fixed the stride from the same width bound the
// keys were built under.
func (f *Flat) AppendTuple(t Tuple) {
	if len(t.L) > f.Stride || len(t.R) > f.Stride {
		panic("interval: key wider than flat stride")
	}
	f.Labels = append(f.Labels, t.S)
	o := len(f.Digits)
	f.Digits = append(f.Digits, make([]int64, 2*f.Stride)...)
	copy(f.Digits[o:], t.L)
	copy(f.Digits[o+f.Stride:], t.R)
	f.Lens = append(f.Lens, int32(len(t.L)), int32(len(t.R)))
	f.rel = nil
}

// AppendRow copies row i of src (same stride) into the next row.
func (f *Flat) AppendRow(src *Flat, i int) {
	f.Labels = append(f.Labels, src.Labels[i])
	f.Digits = append(f.Digits, src.Digits[2*i*src.Stride:2*(i+1)*src.Stride]...)
	f.Lens = append(f.Lens, int32(src.LLen(i)), int32(src.RLen(i)))
	if src.Orig != nil {
		f.Orig = append(f.Orig, src.Orig[i])
	}
	f.rel = nil
}

// MoveRow overwrites row dst with row src within the same flat — the
// in-place compaction step of the batch filter kernels. No-op when
// dst == src, so a kernel that keeps everything copies nothing.
func (f *Flat) MoveRow(dst, src int) {
	if dst == src {
		return
	}
	w := 2 * f.Stride
	copy(f.Digits[dst*w:(dst+1)*w], f.Digits[src*w:(src+1)*w])
	f.Labels[dst] = f.Labels[src]
	if f.Lens != nil {
		f.Lens[2*dst], f.Lens[2*dst+1] = f.Lens[2*src], f.Lens[2*src+1]
	}
	if f.Orig != nil {
		f.Orig[dst] = f.Orig[src]
	}
	f.rel = nil
}

// Truncate shortens the flat to its first n rows.
func (f *Flat) Truncate(n int) {
	f.Labels = f.Labels[:n]
	f.Digits = f.Digits[:2*n*f.Stride]
	if f.Lens != nil {
		f.Lens = f.Lens[:2*n]
	}
	if f.Orig != nil {
		f.Orig = f.Orig[:n]
	}
	f.rel = nil
}

// Len returns the number of rows.
func (f *Flat) Len() int { return len(f.Labels) }

// LLen returns the exact digit count of row i's L key.
func (f *Flat) LLen(i int) int {
	if f.Lens == nil {
		return f.Stride
	}
	return int(f.Lens[2*i])
}

// RLen returns the exact digit count of row i's R key.
func (f *Flat) RLen(i int) int {
	if f.Lens == nil {
		return f.Stride
	}
	return int(f.Lens[2*i+1])
}

// L returns row i's left endpoint as a full-stride key view (no copy).
func (f *Flat) L(i int) Key {
	o := 2 * i * f.Stride
	return Key(f.Digits[o : o+f.Stride : o+f.Stride])
}

// R returns row i's right endpoint as a full-stride key view (no copy).
func (f *Flat) R(i int) Key {
	o := (2*i + 1) * f.Stride
	return Key(f.Digits[o : o+f.Stride : o+f.Stride])
}

// Tuple materializes row i as a tuple view; the keys alias the buffer at
// their exact physical lengths (capacity-capped, so appending to one can
// never clobber the neighbouring key).
func (f *Flat) Tuple(i int) Tuple {
	o := 2 * i * f.Stride
	ln, rn := f.LLen(i), f.RLen(i)
	return Tuple{
		S: f.Labels[i],
		L: Key(f.Digits[o : o+ln : o+ln]),
		R: Key(f.Digits[o+f.Stride : o+f.Stride+rn : o+f.Stride+rn]),
	}
}

// View returns a zero-copy window over rows [lo, hi) — the chunking
// primitive of the batch runtime. The view shares the parent's buffers.
func (f *Flat) View(lo, hi int) *Flat {
	v := &Flat{
		Stride: f.Stride,
		Labels: f.Labels[lo:hi],
		Digits: f.Digits[2*lo*f.Stride : 2*hi*f.Stride],
	}
	if f.Lens != nil {
		v.Lens = f.Lens[2*lo : 2*hi]
	}
	if f.Orig != nil {
		v.Orig = f.Orig[lo:hi]
	}
	return v
}

// CompareAt lexicographically compares the L keys of rows i and j without
// touching Key at all: a straight digit loop over buffer offsets.
func (f *Flat) CompareAt(i, j int) int {
	a, b := 2*i*f.Stride, 2*j*f.Stride
	d := f.Digits
	for k := 0; k < f.Stride; k++ {
		da, db := d[a+k], d[b+k]
		if da != db {
			if da < db {
				return -1
			}
			return 1
		}
	}
	return 0
}

// ComparePrefixAt compares the first n digits of row i's L key with the
// n-digit prefix p, allocation-free.
func (f *Flat) ComparePrefixAt(i int, p Key, n int) int {
	o := 2 * i * f.Stride
	d := f.Digits
	for k := 0; k < n; k++ {
		var dk int64
		if k < f.Stride {
			dk = d[o+k]
		}
		dp := p.Digit(k)
		if dk != dp {
			if dk < dp {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Sort reorders the rows into L-key order: an index-permutation sort over
// the flat buffer (parallel for parallelism > 1 on large inputs) followed
// by one columnar gather pass.
func (f *Flat) Sort(parallelism int) {
	order := SortPerm(f.Len(), parallelism, f.CompareAt)
	labels := make([]string, len(f.Labels))
	digits := make([]int64, len(f.Digits))
	w := 2 * f.Stride
	for i, p := range order {
		labels[i] = f.Labels[p]
		copy(digits[i*w:(i+1)*w], f.Digits[p*w:(p+1)*w])
	}
	if f.Lens != nil {
		lens := make([]int32, len(f.Lens))
		for i, p := range order {
			lens[2*i], lens[2*i+1] = f.Lens[2*p], f.Lens[2*p+1]
		}
		f.Lens = lens
	}
	if f.Orig != nil {
		orig := make([]int32, len(f.Orig))
		for i, p := range order {
			orig[i] = f.Orig[p]
		}
		f.Orig = orig
	}
	f.Labels, f.Digits = labels, digits
	f.rel = nil
}

// IsSorted reports whether the rows are in L order.
func (f *Flat) IsSorted() bool {
	for i := 1; i < f.Len(); i++ {
		if f.CompareAt(i-1, i) > 0 {
			return false
		}
	}
	return true
}

// Relation materializes the compatibility view lazily: a relation whose
// tuple keys alias the flat buffer at their exact physical lengths (full
// stride when Lens is nil). The view is cached; callers must not mutate it.
func (f *Flat) Relation() *Relation {
	if f.rel == nil {
		tuples := make([]Tuple, f.Len())
		for i := range tuples {
			tuples[i] = f.Tuple(i)
		}
		f.rel = &Relation{Tuples: tuples}
	}
	return f.rel
}

// Footprint returns the resident size of the flat buffers in bytes — the
// unit of account for the runtime memory budget. Label string headers are
// counted; the label bytes themselves are shared with the document and
// excluded.
func (f *Flat) Footprint() int64 {
	return int64(len(f.Digits))*8 + int64(len(f.Labels))*tupleLabelBytes +
		int64(len(f.Lens))*4 + int64(len(f.Orig))*4
}

// tupleLabelBytes is the accounted per-row label cost: a string header
// (pointer + length) on a 64-bit platform.
const tupleLabelBytes = 16

// tupleHeaderBytes is the accounted size of a Tuple struct itself: one
// string header plus two slice headers.
const tupleHeaderBytes = 16 + 2*24

// TupleFootprint returns the accounted resident size of one row-form tuple:
// struct header plus its key digits.
func TupleFootprint(t Tuple) int64 {
	return tupleHeaderBytes + int64(len(t.L)+len(t.R))*8
}

// TuplesFootprint returns the accounted resident size of a tuple slice:
// tuple headers plus all key digits. Keys aliasing a shared arena are
// counted at their view length — close enough for budget enforcement,
// which needs a consistent measure rather than allocator truth.
func TuplesFootprint(ts []Tuple) int64 {
	n := int64(0)
	for i := range ts {
		n += TupleFootprint(ts[i])
	}
	return n
}

// RelationFootprint returns the accounted resident size of a row-form
// relation.
func RelationFootprint(r *Relation) int64 {
	if r == nil {
		return 0
	}
	return TuplesFootprint(r.Tuples)
}
