// Exchange-style repartitioning for the parallel structural sorts. The
// chunk phase of SortPerm leaves parallelism independently sorted runs;
// merging them pairwise parallelizes poorly — every round halves the
// number of concurrent merges, and the final round is one serial merge
// over the whole input. ExchangeMerge instead repartitions the runs by key
// range: sampled splitters cut the key space into one contiguous region
// per worker, every run is sliced at those splitters by binary search, and
// each worker k-way merges its region's slices into the output at a
// precomputed offset. All partitions merge concurrently, including the
// "last" one — there is no serial tail.
//
// The output is a pure function of the runs and the comparator: the merged
// order is the unique total order (the comparator is made strict by the
// caller's position tie-break), and the partitioning only decides which
// worker writes which region of it. Splitter choice therefore affects
// balance, never content — a skewed sample produces empty partitions and
// idle workers, not wrong answers.
package interval

import (
	"container/heap"
	"slices"

	"dixq/internal/exec"
	"dixq/internal/obs"
)

// ExchangeMerge merges sorted runs of positions into out (len(out) must
// equal the total run length), using up to parallelism concurrent
// partition merges. cmp must be a strict total order (no two distinct
// positions compare equal — SortPerm's position tie-break guarantees it)
// and safe for concurrent calls. The result is identical to a serial
// k-way merge of the runs at any parallelism and any worker grant.
func ExchangeMerge(out []int, runs [][]int, parallelism int, cmp func(a, b int) int) {
	switch len(runs) {
	case 0:
		return
	case 1:
		copy(out, runs[0])
		return
	}
	parts := partitionRuns(runs, parallelism, cmp)
	// Output offsets: partition p writes out[offsets[p]:offsets[p+1]).
	// Each partition's width is the sum of its run slices, so the regions
	// tile the output exactly.
	k := len(runs)
	offsets := make([]int, len(parts)+1)
	for p, cut := range parts {
		width := 0
		for r := 0; r < k; r++ {
			width += cut[k+r] - cut[r]
		}
		offsets[p+1] = offsets[p] + width
	}
	exec.Run(len(parts), parallelism, func(task, worker int) {
		cut := parts[task]
		dst := out[offsets[task]:offsets[task+1]]
		merged := make([][]int, 0, k)
		for r, run := range runs {
			if s := run[cut[r]:cut[k+r]]; len(s) > 0 {
				merged = append(merged, s)
			}
		}
		mergeK(dst, merged, cmp)
		obs.ExchangePartitions.With(exec.WorkerLabel(worker)).Inc()
	})
}

// partitionRuns cuts every run at parallelism-1 sampled splitters. The
// returned cut vector of partition p has length 2*len(runs): cut[r] is
// where the partition starts in run r and cut[len(runs)+r] where it ends.
// Cuts are lower bounds of the splitters — every element comparing below
// the splitter lands in an earlier partition — so with a strict comparator
// the partitions are disjoint and cover every element. Splitters are the
// medians of the runs' quantile elements; a bad sample only unbalances the
// partitions (possibly to empty), it cannot lose or duplicate elements.
func partitionRuns(runs [][]int, parallelism int, cmp func(a, b int) int) [][]int {
	nparts := max(parallelism, 2)
	splitters := make([]int, 0, nparts-1)
	cand := make([]int, 0, len(runs))
	for p := 1; p < nparts; p++ {
		cand = cand[:0]
		for _, run := range runs {
			if len(run) > 0 {
				cand = append(cand, run[len(run)*p/nparts])
			}
		}
		if len(cand) == 0 {
			break
		}
		slices.SortFunc(cand, cmp)
		splitters = append(splitters, cand[len(cand)/2])
	}
	// bounds[r] holds run r's len(splitters)+2 monotone cut positions:
	// start, one lower bound per splitter, end.
	bounds := make([][]int, len(runs))
	for r, run := range runs {
		b := make([]int, len(splitters)+2)
		b[len(b)-1] = len(run)
		for si, sp := range splitters {
			lo := b[si] // splitters ascend, so each search resumes at the previous cut
			b[si+1] = lo + lowerBound(run[lo:], sp, cmp)
		}
		bounds[r] = b
	}
	nparts = len(splitters) + 1
	parts := make([][]int, nparts)
	for p := 0; p < nparts; p++ {
		cut := make([]int, 2*len(runs))
		for r := range runs {
			cut[r] = bounds[r][p]
			cut[len(runs)+r] = bounds[r][p+1]
		}
		parts[p] = cut
	}
	return parts
}

// lowerBound returns the first position i in the sorted run with
// cmp(run[i], x) >= 0.
func lowerBound(run []int, x int, cmp func(a, b int) int) int {
	lo, hi := 0, len(run)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cmp(run[mid], x) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// runHead is one merge input's cursor for the partition k-way merge.
type runHead struct {
	run []int
	pos int
}

type runHeap struct {
	h   []runHead
	cmp func(a, b int) int
}

func (r *runHeap) Len() int { return len(r.h) }
func (r *runHeap) Less(i, j int) bool {
	return r.cmp(r.h[i].run[r.h[i].pos], r.h[j].run[r.h[j].pos]) < 0
}
func (r *runHeap) Swap(i, j int) { r.h[i], r.h[j] = r.h[j], r.h[i] }
func (r *runHeap) Push(x any)    { r.h = append(r.h, x.(runHead)) }
func (r *runHeap) Pop() any      { x := r.h[len(r.h)-1]; r.h = r.h[:len(r.h)-1]; return x }

// mergeK merges the sorted slices into dst. Two slices take the direct
// two-way merge; more go through a lookahead heap.
func mergeK(dst []int, in [][]int, cmp func(a, b int) int) {
	switch len(in) {
	case 0:
		return
	case 1:
		copy(dst, in[0])
		return
	case 2:
		merge2(dst, in[0], in[1], cmp)
		return
	}
	h := &runHeap{cmp: cmp, h: make([]runHead, 0, len(in))}
	for _, run := range in {
		h.h = append(h.h, runHead{run: run})
	}
	heap.Init(h)
	for i := range dst {
		top := &h.h[0]
		dst[i] = top.run[top.pos]
		top.pos++
		if top.pos >= len(top.run) {
			heap.Pop(h)
		} else {
			heap.Fix(h, 0)
		}
	}
}

// merge2 is the allocation-free two-way merge.
func merge2(dst, a, b []int, cmp func(x, y int) int) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if cmp(b[j], a[i]) < 0 {
			dst[k] = b[j]
			j++
		} else {
			dst[k] = a[i]
			i++
		}
		k++
	}
	k += copy(dst[k:], a[i:])
	copy(dst[k:], b[j:])
}
