package interval

import (
	"fmt"
	"slices"
	"strings"

	"dixq/internal/xmltree"
)

// Tuple is one row of the ternary relation of Definition 3.1: a node label
// together with the left and right endpoints of its interval.
type Tuple struct {
	S    string
	L, R Key
}

func (t Tuple) String() string {
	return fmt.Sprintf("(%q, %s, %s)", t.S, t.L, t.R)
}

// Relation is an instance of the encoding relation X ⊆ String × Nat × Nat,
// kept sorted by L (document order). All engine operators consume and
// produce relations in this order.
type Relation struct {
	Tuples []Tuple
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.Tuples) }

// Sort sorts the tuples by L key. Operators that construct output in
// document order need not call it.
func (r *Relation) Sort() { r.SortP(1) }

// SortP sorts the tuples by L key, using up to parallelism goroutines on
// large inputs (see SortPerm). The result is identical at any setting.
func (r *Relation) SortP(parallelism int) {
	if parallelism < 2 || len(r.Tuples) < ParallelSortThreshold {
		slices.SortFunc(r.Tuples, func(a, b Tuple) int { return Compare(a.L, b.L) })
		return
	}
	order := SortPerm(len(r.Tuples), parallelism, func(i, j int) int {
		return Compare(r.Tuples[i].L, r.Tuples[j].L)
	})
	out := make([]Tuple, len(r.Tuples))
	for i, p := range order {
		out[i] = r.Tuples[p]
	}
	r.Tuples = out
}

// IsSorted reports whether the tuples are in L order.
func (r *Relation) IsSorted() bool {
	return slices.IsSortedFunc(r.Tuples, func(a, b Tuple) int { return Compare(a.L, b.L) })
}

// Clone returns a relation with a copied tuple slice (keys are shared;
// they are immutable by convention).
func (r *Relation) Clone() *Relation {
	out := &Relation{Tuples: make([]Tuple, len(r.Tuples))}
	copy(out.Tuples, r.Tuples)
	return out
}

// String renders the relation as one tuple per line, for debugging and for
// the worked-example tests (Figures 4, 5 and 7 of the paper).
func (r *Relation) String() string {
	var b strings.Builder
	for _, t := range r.Tuples {
		fmt.Fprintf(&b, "%-34s %12s %12s\n", t.S, t.L, t.R)
	}
	return b.String()
}

// Encode produces the interval encoding of a forest by the depth-first
// counter algorithm of Example 3.2: a single incrementing counter assigns l
// on entry and r on exit, so the encoding of a forest with n nodes has
// width 2n. All keys have one digit.
func Encode(f xmltree.Forest) *Relation {
	r := &Relation{Tuples: make([]Tuple, 0, f.Size())}
	counter := int64(0)
	var walk func(xmltree.Forest)
	walk = func(fs xmltree.Forest) {
		for _, n := range fs {
			idx := len(r.Tuples)
			r.Tuples = append(r.Tuples, Tuple{S: n.Label, L: Key{counter}})
			counter++
			walk(n.Children)
			r.Tuples[idx].R = Key{counter}
			counter++
		}
	}
	walk(f)
	return r
}

// Width returns a width for a one-digit (freshly encoded) relation: one
// more than the largest first-digit endpoint, or 0 for the empty relation.
// Widths of derived relations are tracked symbolically by the planner; this
// accessor exists for the worked examples and the tests.
func (r *Relation) Width() int64 {
	var max int64 = -1
	for _, t := range r.Tuples {
		if d := t.R.Digit(0); d > max {
			max = d
		}
		if d := t.L.Digit(0); d > max {
			max = d
		}
	}
	return max + 1
}

// Decode reconstructs the forest represented by the relation. The relation
// must be a valid encoding (see Validate); tuples may be in any order. Node
// kinds are recovered from the label shape, which is all the information
// the encoding retains.
func Decode(r *Relation) (xmltree.Forest, error) {
	if err := Validate(r); err != nil {
		return nil, err
	}
	tuples := r.Tuples
	if !r.IsSorted() {
		sorted := r.Clone()
		sorted.Sort()
		tuples = sorted.Tuples
	}
	type frame struct {
		node *xmltree.Node
		r    Key
	}
	var root xmltree.Forest
	var stack []frame
	for _, t := range tuples {
		for len(stack) > 0 && Compare(stack[len(stack)-1].r, t.L) < 0 {
			stack = stack[:len(stack)-1]
		}
		n := &xmltree.Node{Label: t.S}
		if len(stack) == 0 {
			root = append(root, n)
		} else {
			p := stack[len(stack)-1].node
			p.Children = append(p.Children, n)
		}
		stack = append(stack, frame{n, t.R})
	}
	return root, nil
}

// MustDecode is Decode for inputs known to be valid; it panics on error.
func MustDecode(r *Relation) xmltree.Forest {
	f, err := Decode(r)
	if err != nil {
		panic(err)
	}
	return f
}

// Validate checks the invariants of Definition 3.1: every tuple has l < r,
// and any two intervals are either disjoint or strictly nested (no shared
// endpoints, no partial overlap). A relation passing Validate encodes
// exactly one forest.
func Validate(r *Relation) error {
	tuples := r.Tuples
	if !r.IsSorted() {
		sorted := r.Clone()
		sorted.Sort()
		tuples = sorted.Tuples
	}
	var stack []Tuple
	var prevL Key
	for i, t := range tuples {
		if Compare(t.L, t.R) >= 0 {
			return fmt.Errorf("interval: tuple %s has l >= r", t)
		}
		if i > 0 && Compare(prevL, t.L) == 0 {
			return fmt.Errorf("interval: duplicate left endpoint %s", t.L)
		}
		prevL = t.L
		for len(stack) > 0 {
			top := stack[len(stack)-1]
			c := Compare(top.R, t.L)
			if c == 0 {
				return fmt.Errorf("interval: tuples %s and %s share endpoint %s", top, t, t.L)
			}
			if c < 0 {
				stack = stack[:len(stack)-1]
				continue
			}
			// top.L < t.L < top.R: t must nest strictly inside top.
			if Compare(t.R, top.R) >= 0 {
				return fmt.Errorf("interval: tuples %s and %s overlap without nesting", top, t)
			}
			break
		}
		stack = append(stack, t)
	}
	return nil
}
