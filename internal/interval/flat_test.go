package interval

import (
	"math/rand"
	"slices"
	"testing"
)

func randomKey(rng *rand.Rand, maxLen int) Key {
	n := rng.Intn(maxLen + 1)
	k := make(Key, n)
	for i := range k {
		k[i] = int64(rng.Intn(5))
	}
	return k
}

func TestKeyArenaKeysSurviveChunkGrowth(t *testing.T) {
	var a KeyArena
	var keys []Key
	// Force many chunk rollovers; earlier keys must keep their digits.
	for i := 0; i < 4096; i++ {
		k := a.Alloc(3)
		k[0], k[1], k[2] = int64(i), int64(i+1), int64(i+2)
		keys = append(keys, k)
	}
	for i, k := range keys {
		if k[0] != int64(i) || k[1] != int64(i+1) || k[2] != int64(i+2) {
			t.Fatalf("key %d corrupted after chunk growth: %v", i, k)
		}
	}
	// Slots are capacity-capped: appending to one must not bleed into the
	// next slot.
	k := keys[0]
	k = append(k, 99)
	if keys[1][0] != 1 {
		t.Fatalf("append to one slot overwrote the next: %v", keys[1])
	}
	_ = k
}

func TestKeyArenaCloneAndRebase(t *testing.T) {
	var a KeyArena
	orig := Key{7, 8, 9}
	c := a.Clone(orig)
	if !c.Equal(orig) || len(c) != 3 {
		t.Fatalf("Clone = %v", c)
	}
	if a.Clone(nil) != nil {
		t.Fatal("Clone(nil) should be nil")
	}
	// Rebase must equal base.Extend(baseLen).Append(k.Suffix(depth)...).
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		base := randomKey(rng, 4)
		k := randomKey(rng, 6)
		baseLen := rng.Intn(5)
		depth := rng.Intn(4)
		// Extend panics when dropping nonzero digits; normalize base.
		if len(base) > baseLen {
			base = base[:baseLen]
		}
		want := base.Extend(baseLen).Append(k.Suffix(depth)...)
		got := a.Rebase(base, baseLen, k, depth)
		if !slices.Equal(got, want) {
			t.Fatalf("Rebase(%v, %d, %v, %d) = %v, want %v", base, baseLen, k, depth, got, want)
		}
	}
}

// TestBuilderMatchesPerKeyConstruction drives Builder through random
// Rebase/RebaseShift/Emit sequences and checks every emitted key is
// digit-for-digit (and length-for-length) what the per-key Append
// construction yields.
func TestBuilderMatchesPerKeyConstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 300; trial++ {
		depth := rng.Intn(3)
		stride := depth + 1 + rng.Intn(4)
		b := NewBuilder(stride, 0)
		var want []Tuple
		prefix := randomKey(rng, depth)
		b.SetBase(prefix, depth)
		base := prefix.Extend(depth)
		if rng.Intn(2) == 0 {
			d := int64(rng.Intn(3))
			b.PushBaseDigit(d)
			base = base.Append(d)
		}
		for i := 0; i < 10; i++ {
			l := randomKey(rng, stride-len(base)+depth)
			r := randomKey(rng, stride-len(base)+depth)
			switch rng.Intn(3) {
			case 0:
				b.Rebase("s", l, r, depth)
				want = append(want, Tuple{S: "s",
					L: base.Append(l.Suffix(depth)...),
					R: base.Append(r.Suffix(depth)...)})
			case 1:
				delta := int64(rng.Intn(4))
				b.RebaseShift("t", l, r, depth, delta)
				shift := func(k Key) Key {
					out := base.Append(k.Digit(depth) + delta)
					if len(k) > depth+1 {
						out = out.Append(k[depth+1:]...)
					}
					return out
				}
				want = append(want, Tuple{S: "t", L: shift(l), R: shift(r)})
			case 2:
				row := b.Emit("e", 0, 0)
				b.SetRTail(row, 5)
				want = append(want, Tuple{S: "e", L: base.Append(0), R: base.Append(5)})
			}
		}
		got := b.Relation()
		if len(got.Tuples) != len(want) {
			t.Fatalf("trial %d: %d tuples, want %d", trial, len(got.Tuples), len(want))
		}
		for i := range want {
			g, w := got.Tuples[i], want[i]
			if g.S != w.S || !slices.Equal(g.L, w.L) || !slices.Equal(g.R, w.R) {
				t.Fatalf("trial %d tuple %d: got %s (len %d/%d), want %s (len %d/%d)",
					trial, i, g, len(g.L), len(g.R), w, len(w.L), len(w.R))
			}
		}
	}
}

func randomRelation(rng *rand.Rand, n, maxLen int) *Relation {
	r := &Relation{Tuples: make([]Tuple, n)}
	for i := range r.Tuples {
		r.Tuples[i] = Tuple{S: "x", L: randomKey(rng, maxLen), R: randomKey(rng, maxLen)}
	}
	return r
}

func TestFlatRoundTripAndComparators(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rel := randomRelation(rng, 200, 5)
	f := FlatOf(rel)
	if f.Len() != rel.Len() {
		t.Fatalf("Len = %d", f.Len())
	}
	for i, tp := range rel.Tuples {
		v := f.Tuple(i)
		// Views are stride-padded; comparison semantics must match.
		if v.S != tp.S || !v.L.Equal(tp.L) || !v.R.Equal(tp.R) {
			t.Fatalf("row %d: %s != %s", i, v, tp)
		}
	}
	for i := 0; i < 100; i++ {
		a, b := rng.Intn(f.Len()), rng.Intn(f.Len())
		if got, want := f.CompareAt(a, b), Compare(rel.Tuples[a].L, rel.Tuples[b].L); got != want {
			t.Fatalf("CompareAt(%d,%d) = %d, want %d", a, b, got, want)
		}
		p := randomKey(rng, 7)
		n := rng.Intn(len(p) + 1)
		if got, want := f.ComparePrefixAt(a, p, n), rel.Tuples[a].L.ComparePrefix(p, n); got != want {
			t.Fatalf("ComparePrefixAt(%d, %v, %d) = %d, want %d", a, p, n, got, want)
		}
	}
}

func TestFlatSortMatchesRelationSort(t *testing.T) {
	old := ParallelSortThreshold
	ParallelSortThreshold = 16
	defer func() { ParallelSortThreshold = old }()
	rng := rand.New(rand.NewSource(4))
	for _, parallelism := range []int{1, 4} {
		rel := randomRelation(rng, 500, 4)
		want := rel.Clone()
		want.Sort()
		f := FlatOf(rel)
		f.Sort(parallelism)
		if !f.IsSorted() {
			t.Fatalf("parallelism %d: not sorted", parallelism)
		}
		got := f.Relation()
		for i := range want.Tuples {
			if !got.Tuples[i].L.Equal(want.Tuples[i].L) {
				t.Fatalf("parallelism %d row %d: %s vs %s", parallelism, i, got.Tuples[i], want.Tuples[i])
			}
		}
	}
}

func TestSortPermStable(t *testing.T) {
	old := ParallelSortThreshold
	ParallelSortThreshold = 8
	defer func() { ParallelSortThreshold = old }()
	vals := []int{3, 1, 3, 1, 2, 3, 1, 2, 2, 3, 1, 0}
	for _, parallelism := range []int{1, 3} {
		order := SortPerm(len(vals), parallelism, func(a, b int) int { return vals[a] - vals[b] })
		for i := 1; i < len(order); i++ {
			va, vb := vals[order[i-1]], vals[order[i]]
			if va > vb || (va == vb && order[i-1] > order[i]) {
				t.Fatalf("parallelism %d: unstable or unsorted at %d: %v", parallelism, i, order)
			}
		}
	}
}

func TestRelationSortPParallel(t *testing.T) {
	old := ParallelSortThreshold
	ParallelSortThreshold = 16
	defer func() { ParallelSortThreshold = old }()
	rng := rand.New(rand.NewSource(5))
	rel := randomRelation(rng, 300, 4)
	want := rel.Clone()
	want.Sort()
	rel.SortP(4)
	for i := range want.Tuples {
		if !rel.Tuples[i].L.Equal(want.Tuples[i].L) {
			t.Fatalf("row %d differs", i)
		}
	}
}

// BenchmarkKeyCompare contrasts the allocation-free flat positional
// comparator with the Key-view comparison it replaces.
func BenchmarkKeyCompare(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	rel := randomRelation(rng, 1024, 4)
	f := FlatOf(rel)
	b.Run("flat", func(b *testing.B) {
		b.ReportAllocs()
		s := 0
		for i := 0; i < b.N; i++ {
			s += f.CompareAt(i%1024, (i*7)%1024)
		}
		_ = s
	})
	b.Run("keys", func(b *testing.B) {
		b.ReportAllocs()
		s := 0
		for i := 0; i < b.N; i++ {
			s += Compare(rel.Tuples[i%1024].L, rel.Tuples[(i*7)%1024].L)
		}
		_ = s
	})
}

// BenchmarkStructuralSort measures the index-permutation sort over both
// layouts, serial and parallel.
func BenchmarkStructuralSort(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	const n = 20000
	base := randomRelation(rng, n, 4)
	for _, bc := range []struct {
		name        string
		parallelism int
	}{{"serial", 1}, {"parallel8", 8}} {
		b.Run("tuples/"+bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				rel := base.Clone()
				b.StartTimer()
				rel.SortP(bc.parallelism)
			}
		})
		b.Run("flat/"+bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				f := FlatOf(base)
				b.StartTimer()
				f.Sort(bc.parallelism)
			}
		})
	}
}
