// Package stats collects and persists per-document statistics for the
// cost-based optimizer (internal/opt): relation cardinality, per-label
// instance counts, and per-dataguide-path summaries (instance count,
// subtree rows, distinct text values under the path). Everything is
// derived from one O(n) stack pass over the L-sorted relation — the same
// pass shape index.Build uses — so collection piggybacks on encode/load
// and never touches the document twice.
//
// Statistics persist beside the relation and index in the DIXQS3 store
// section (see internal/store) and publish through the catalog under a
// monotonic stats epoch: plan caches fold the epoch into their keys so a
// stats refresh invalidates cached plans even when the index is unchanged.
//
// Paths use the dataguide vocabulary of internal/index: "/"-joined class
// labels from the root, with all text collapsed into a "#text" segment —
// the query algebra selects text by kind, never by content, so one class
// per parent path suffices. DistinctText is exact (a per-class string
// set during collection), which is affordable because text values are
// already materialized as tuple labels.
package stats

import (
	"sort"

	"dixq/internal/interval"
	"dixq/internal/xmltree"
)

// textSegment is the rendered path segment of the collapsed text class,
// matching index.DocIndex.Paths.
const textSegment = "#text"

// PathStats summarizes one dataguide path (one class of the strong
// dataguide).
type PathStats struct {
	// Count is the number of instances of the path (rows whose
	// root-to-node class path equals it).
	Count int64
	// SubtreeRows is the total relation rows covered by the subtrees of
	// all instances, instances included. For a text path this equals
	// Count. SubtreeRows/Count is the mean fan-out of the path and the
	// cost of materializing one instance forest.
	SubtreeRows int64
	// DistinctText is the number of distinct text values among the
	// instances of a text path ("#text" leaf), and 0 for element and
	// attribute paths. 1/DistinctText is the equality selectivity of a
	// value join whose side resolves to this path.
	DistinctText int64
}

// DocStats is the statistics of a single document relation.
type DocStats struct {
	// Tuples is the relation cardinality.
	Tuples int64
	// Labels maps each element/attribute label to its instance count —
	// the posting length of the structural index, persisted so the
	// optimizer can estimate without an index in memory.
	Labels map[string]int64
	// Paths maps each distinct root-to-node class path (rendered as in
	// index.DocIndex.Paths: "/"-joined, text as "#text") to its summary.
	Paths map[string]PathStats
}

// Collect computes the statistics of a relation in one stack pass over
// the L-sorted tuples.
func Collect(rel *interval.Relation) *DocStats {
	s := &DocStats{
		Tuples: int64(len(rel.Tuples)),
		Labels: map[string]int64{},
		Paths:  map[string]PathStats{},
	}
	type frame struct {
		row  int
		path string
	}
	// distinct accumulates the text values per text path; sizes are
	// folded into Paths at the end.
	distinct := map[string]map[string]struct{}{}
	var stack []frame
	pop := func(f frame, end int) {
		ps := s.Paths[f.path]
		ps.Count++
		ps.SubtreeRows += int64(end - f.row)
		s.Paths[f.path] = ps
	}
	for i, t := range rel.Tuples {
		for len(stack) > 0 && interval.Compare(rel.Tuples[stack[len(stack)-1].row].R, t.L) < 0 {
			pop(stack[len(stack)-1], i)
			stack = stack[:len(stack)-1]
		}
		prefix := ""
		if len(stack) > 0 {
			prefix = stack[len(stack)-1].path
		}
		var path string
		if xmltree.LabelKind(t.S) == xmltree.Text {
			path = prefix + "/" + textSegment
			set := distinct[path]
			if set == nil {
				set = map[string]struct{}{}
				distinct[path] = set
			}
			set[t.S] = struct{}{}
		} else {
			path = prefix + "/" + t.S
			s.Labels[t.S]++
		}
		stack = append(stack, frame{i, path})
	}
	for _, f := range stack {
		pop(f, len(rel.Tuples))
	}
	for path, set := range distinct {
		ps := s.Paths[path]
		ps.DistinctText = int64(len(set))
		s.Paths[path] = ps
	}
	return s
}

// LabelCount returns the instance count of an element/attribute label,
// or 0 when the label does not occur. Text-shaped labels return the
// total text-row count: text is never selected by content.
func (s *DocStats) LabelCount(label string) int64 {
	if s == nil {
		return 0
	}
	if xmltree.LabelKind(label) == xmltree.Text {
		var n int64
		for p, ps := range s.Paths {
			if isTextPath(p) {
				n += ps.Count
			}
		}
		return n
	}
	return s.Labels[label]
}

func isTextPath(p string) bool {
	return len(p) >= len(textSegment)+1 && p[len(p)-len(textSegment)-1:] == "/"+textSegment
}

// PathNames returns the stats paths in lexicographic order, for
// deterministic iteration and rendering.
func (s *DocStats) PathNames() []string {
	out := make([]string, 0, len(s.Paths))
	for p := range s.Paths {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Set is the statistics of a catalog of documents, tagged with a
// monotonic epoch that changes whenever any document's statistics are
// recollected. Plan caches key on the epoch so plans optimized against
// stale statistics never serve a query.
type Set struct {
	Docs  map[string]*DocStats
	Epoch uint64
}

// Doc returns the statistics of a named document, or nil.
func (s *Set) Doc(name string) *DocStats {
	if s == nil {
		return nil
	}
	return s.Docs[name]
}

// CollectSet computes statistics for every document of a catalog.
func CollectSet(cat map[string]*interval.Relation) *Set {
	s := &Set{Docs: make(map[string]*DocStats, len(cat))}
	for name, rel := range cat {
		s.Docs[name] = Collect(rel)
	}
	return s
}
