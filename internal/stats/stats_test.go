package stats

import (
	"bufio"
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"dixq/internal/index"
	"dixq/internal/interval"
	"dixq/internal/xmltree"
)

func handForest() xmltree.Forest {
	return xmltree.Forest{
		xmltree.NewElement("a",
			xmltree.NewAttribute("x", "1"),
			xmltree.NewElement("b", xmltree.NewText("t")),
			xmltree.NewElement("b", xmltree.NewText("u")),
			xmltree.NewElement("c",
				xmltree.NewElement("b", xmltree.NewText("t")),
			),
		),
	}
}

func TestCollectHandDoc(t *testing.T) {
	rel := interval.Encode(handForest())
	s := Collect(rel)
	if s.Tuples != int64(len(rel.Tuples)) {
		t.Fatalf("Tuples = %d, want %d", s.Tuples, len(rel.Tuples))
	}
	wantLabels := map[string]int64{"<a>": 1, "<b>": 3, "<c>": 1, "@x": 1}
	if !reflect.DeepEqual(s.Labels, wantLabels) {
		t.Fatalf("Labels = %v, want %v", s.Labels, wantLabels)
	}
	// /a/b occurs twice, each subtree is the b plus one text child.
	ab := s.Paths["/<a>/<b>"]
	if ab.Count != 2 || ab.SubtreeRows != 4 {
		t.Fatalf("/<a>/<b> = %+v, want Count 2 SubtreeRows 4", ab)
	}
	// The two /a/b texts are "t" and "u": distinct 2.
	abt := s.Paths["/<a>/<b>/#text"]
	if abt.Count != 2 || abt.DistinctText != 2 || abt.SubtreeRows != 2 {
		t.Fatalf("/<a>/<b>/#text = %+v, want Count 2 DistinctText 2 SubtreeRows 2", abt)
	}
	// The single /a/c/b text is "t": distinct 1.
	acbt := s.Paths["/<a>/<c>/<b>/#text"]
	if acbt.Count != 1 || acbt.DistinctText != 1 {
		t.Fatalf("/<a>/<c>/<b>/#text = %+v, want Count 1 DistinctText 1", acbt)
	}
	if got := s.LabelCount("<b>"); got != 3 {
		t.Fatalf("LabelCount(<b>) = %d, want 3", got)
	}
	if got := s.LabelCount("t"); got != 4 { // all text rows: "1", t, u, t
		t.Fatalf("LabelCount(text) = %d, want 4", got)
	}
	if got := s.LabelCount("<zzz>"); got != 0 {
		t.Fatalf("LabelCount(<zzz>) = %d, want 0", got)
	}
}

// TestCollectMatchesIndex is the cross-structure property: over random
// forests the stats paths are exactly the dataguide paths, per-path
// counts equal the class instance counts, per-label counts equal the
// posting lengths, and SubtreeRows equals the sum of End-range sizes.
func TestCollectMatchesIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(20030609))
	for i := 0; i < 200; i++ {
		f := xmltree.RandomForest(rng, 60)
		rel := interval.Encode(f)
		s := Collect(rel)
		ix := index.Build(rel)
		if got, want := s.PathNames(), ix.Paths(); !reflect.DeepEqual(got, want) {
			t.Fatalf("forest %d %s:\nstats paths     %q\ndataguide paths %q", i, f, got, want)
		}
		for label, count := range s.Labels {
			res := ix.Resolve(nil)
			_ = res
			if !ix.HasLabel(label) {
				t.Fatalf("forest %d: stats label %q missing from postings", i, label)
			}
			_ = count
		}
		var pathRows int64
		for _, ps := range s.Paths {
			pathRows += ps.Count
		}
		if pathRows != s.Tuples {
			t.Fatalf("forest %d: path counts sum to %d, want %d", i, pathRows, s.Tuples)
		}
	}
}

func TestCollectSubtreeRowsAgainstEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		f := xmltree.RandomForest(rng, 40)
		rel := interval.Encode(f)
		s := Collect(rel)
		ix := index.Build(rel)
		// Recompute per-path subtree rows from the index End array.
		type frame struct {
			row  int
			path string
		}
		want := map[string]int64{}
		var stack []frame
		for r := range rel.Tuples {
			for len(stack) > 0 && ix.End[stack[len(stack)-1].row] <= int32(r) {
				stack = stack[:len(stack)-1]
			}
			prefix := ""
			if len(stack) > 0 {
				prefix = stack[len(stack)-1].path
			}
			label := rel.Tuples[r].S
			if xmltree.LabelKind(label) == xmltree.Text {
				label = "#text"
			}
			p := prefix + "/" + label
			want[p] += int64(ix.End[r] - int32(r))
			stack = append(stack, frame{r, p})
		}
		for p, ps := range s.Paths {
			if ps.SubtreeRows != want[p] {
				t.Fatalf("forest %d path %s: SubtreeRows %d, want %d", i, p, ps.SubtreeRows, want[p])
			}
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 50; i++ {
		f := xmltree.RandomForest(rng, 80)
		s := Collect(interval.Encode(f))
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		if err := s.Write(w); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		got, err := Read(bufio.NewReader(bytes.NewReader(buf.Bytes())))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, s) {
			t.Fatalf("forest %d: round-trip mismatch:\ngot  %+v\nwant %+v", i, got, s)
		}
		// Determinism: a second serialization is byte-identical.
		var buf2 bytes.Buffer
		w2 := bufio.NewWriter(&buf2)
		if err := got.Write(w2); err != nil {
			t.Fatal(err)
		}
		w2.Flush()
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("forest %d: serialization not deterministic", i)
		}
	}
}

func TestCodecTruncation(t *testing.T) {
	s := Collect(interval.Encode(handForest()))
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := s.Write(w); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		if _, err := Read(bufio.NewReader(bytes.NewReader(full[:cut]))); err == nil {
			t.Fatalf("truncation at %d/%d bytes decoded without error", cut, len(full))
		}
	}
}

func TestCollectSet(t *testing.T) {
	cat := map[string]*interval.Relation{
		"d1": interval.Encode(handForest()),
		"d2": interval.Encode(xmltree.Forest{xmltree.NewElement("r")}),
	}
	set := CollectSet(cat)
	if len(set.Docs) != 2 {
		t.Fatalf("CollectSet produced %d docs, want 2", len(set.Docs))
	}
	if set.Doc("d2").Tuples != 1 {
		t.Fatalf("d2 tuples = %d, want 1", set.Doc("d2").Tuples)
	}
	if set.Doc("missing") != nil {
		t.Fatal("Doc(missing) should be nil")
	}
	var nilSet *Set
	if nilSet.Doc("d1") != nil {
		t.Fatal("nil Set.Doc should be nil")
	}
}

func TestPathNamesSorted(t *testing.T) {
	s := Collect(interval.Encode(handForest()))
	names := s.PathNames()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("PathNames not sorted: %q", names)
	}
}
