// Statistics serialization: the persistent form appended to a DIXQS3
// store file after the document body and index. All integers are
// uvarint, strings are length-prefixed, and both maps are written in
// sorted key order so identical statistics serialize to identical bytes.
package stats

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// maxSaneLen bounds length fields while decoding, mirroring the store's
// guard against corrupt or hostile files.
const maxSaneLen = 1 << 31

// Write serializes the statistics.
func (s *DocStats) Write(w *bufio.Writer) error {
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := w.Write(buf[:n])
		return err
	}
	writeString := func(v string) error {
		if err := writeUvarint(uint64(len(v))); err != nil {
			return err
		}
		_, err := w.WriteString(v)
		return err
	}
	if err := writeUvarint(uint64(s.Tuples)); err != nil {
		return err
	}
	labels := make([]string, 0, len(s.Labels))
	for l := range s.Labels {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	if err := writeUvarint(uint64(len(labels))); err != nil {
		return err
	}
	for _, l := range labels {
		if err := writeString(l); err != nil {
			return err
		}
		if err := writeUvarint(uint64(s.Labels[l])); err != nil {
			return err
		}
	}
	paths := s.PathNames()
	if err := writeUvarint(uint64(len(paths))); err != nil {
		return err
	}
	for _, p := range paths {
		ps := s.Paths[p]
		if err := writeString(p); err != nil {
			return err
		}
		for _, v := range [3]int64{ps.Count, ps.SubtreeRows, ps.DistinctText} {
			if err := writeUvarint(uint64(v)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Read deserializes statistics written by Write.
func Read(r *bufio.Reader) (*DocStats, error) {
	readUvarint := func() (uint64, error) {
		v, err := binary.ReadUvarint(r)
		if err != nil {
			return 0, fmt.Errorf("stats: truncated varint: %w", err)
		}
		if v > maxSaneLen {
			return 0, fmt.Errorf("stats: implausible length %d", v)
		}
		return v, nil
	}
	readString := func() (string, error) {
		l, err := readUvarint()
		if err != nil {
			return "", err
		}
		b := make([]byte, l)
		if _, err := io.ReadFull(r, b); err != nil {
			return "", fmt.Errorf("stats: truncated string: %w", err)
		}
		return string(b), nil
	}
	s := &DocStats{Labels: map[string]int64{}, Paths: map[string]PathStats{}}
	tuples, err := readUvarint()
	if err != nil {
		return nil, err
	}
	s.Tuples = int64(tuples)
	nLabels, err := readUvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nLabels; i++ {
		l, err := readString()
		if err != nil {
			return nil, err
		}
		c, err := readUvarint()
		if err != nil {
			return nil, err
		}
		if _, dup := s.Labels[l]; dup {
			return nil, fmt.Errorf("stats: duplicate label %q", l)
		}
		s.Labels[l] = int64(c)
	}
	nPaths, err := readUvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nPaths; i++ {
		p, err := readString()
		if err != nil {
			return nil, err
		}
		var vals [3]int64
		for j := range vals {
			v, err := readUvarint()
			if err != nil {
				return nil, err
			}
			vals[j] = int64(v)
		}
		if _, dup := s.Paths[p]; dup {
			return nil, fmt.Errorf("stats: duplicate path %q", p)
		}
		s.Paths[p] = PathStats{Count: vals[0], SubtreeRows: vals[1], DistinctText: vals[2]}
	}
	return s, nil
}
