// Package update implements document updates on interval encodings.
//
// The paper defers updates to dynamic labeling schemes (its citations
// [15, 16, 27] — Chen et al., Cohen/Kaplan/Milo, Tatarinov et al.); the
// digit-vector keys this implementation already uses for dynamic intervals
// double as exactly such a scheme: inserting a subtree between two
// existing keys never relabels anything — the new nodes receive keys that
// extend the predecessor key with additional digits, which lexicographic
// comparison orders correctly against every existing key. Deletion just
// drops the subtree's tuples. Both operations are O(subtree + log n).
//
// Repeated front-of-document insertions can require a negative leading
// digit (there is no room below key 0); such relations remain fully
// queryable but cannot be persisted by package store until Rebuild
// re-encodes them with the DFS counter.
package update

import (
	"errors"
	"fmt"
	"sort"

	"dixq/internal/interval"
	"dixq/internal/xmltree"
)

// ErrNotFound reports that the addressed node is not in the relation.
var ErrNotFound = errors.New("update: no node with that left endpoint")

// find locates the tuple with the given L key.
func find(rel *interval.Relation, l interval.Key) (int, error) {
	i := sort.Search(len(rel.Tuples), func(i int) bool {
		return interval.Compare(rel.Tuples[i].L, l) >= 0
	})
	if i == len(rel.Tuples) || !rel.Tuples[i].L.Equal(l) {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, l)
	}
	return i, nil
}

// subtreeEnd returns the index just past the subtree rooted at tuple i.
func subtreeEnd(rel *interval.Relation, i int) int {
	end := i + 1
	for end < len(rel.Tuples) && interval.Compare(rel.Tuples[end].L, rel.Tuples[i].R) < 0 {
		end++
	}
	return end
}

// DeleteSubtree removes the subtree rooted at the node with left endpoint
// rootL, returning a new relation. The input is not modified.
func DeleteSubtree(rel *interval.Relation, rootL interval.Key) (*interval.Relation, error) {
	i, err := find(rel, rootL)
	if err != nil {
		return nil, err
	}
	end := subtreeEnd(rel, i)
	out := &interval.Relation{Tuples: make([]interval.Tuple, 0, len(rel.Tuples)-(end-i))}
	out.Tuples = append(out.Tuples, rel.Tuples[:i]...)
	out.Tuples = append(out.Tuples, rel.Tuples[end:]...)
	return out, nil
}

// InsertAfter inserts the forest as the following siblings of the node
// with left endpoint targetL, returning a new relation.
func InsertAfter(rel *interval.Relation, targetL interval.Key, f xmltree.Forest) (*interval.Relation, error) {
	i, err := find(rel, targetL)
	if err != nil {
		return nil, err
	}
	end := subtreeEnd(rel, i)
	lo := rel.Tuples[i].R
	// The smallest existing key above lo is either the next tuple's left
	// endpoint or the nearest ancestor's right endpoint — when the target
	// is its parent's last child, the parent closes first, and the new
	// siblings must stay inside it.
	var hi interval.Key
	if end < len(rel.Tuples) {
		hi = rel.Tuples[end].L
	}
	for j := i - 1; j >= 0; j-- {
		if interval.Compare(rel.Tuples[j].R, lo) > 0 {
			if hi == nil || interval.Compare(rel.Tuples[j].R, hi) < 0 {
				hi = rel.Tuples[j].R
			}
			break
		}
	}
	return spliceAt(rel, end, lo, hi, f), nil
}

// InsertBefore inserts the forest as the preceding siblings of the node
// with left endpoint targetL.
func InsertBefore(rel *interval.Relation, targetL interval.Key, f xmltree.Forest) (*interval.Relation, error) {
	i, err := find(rel, targetL)
	if err != nil {
		return nil, err
	}
	lo := lowerBoundAt(rel, i)
	return spliceAt(rel, i, lo, rel.Tuples[i].L, f), nil
}

// AppendChild inserts the forest as the last children of the node with
// left endpoint parentL.
func AppendChild(rel *interval.Relation, parentL interval.Key, f xmltree.Forest) (*interval.Relation, error) {
	i, err := find(rel, parentL)
	if err != nil {
		return nil, err
	}
	end := subtreeEnd(rel, i)
	// The predecessor of the parent's R among keys inside the subtree.
	lo := rel.Tuples[i].L
	for j := i + 1; j < end; j++ {
		if interval.Compare(rel.Tuples[j].R, lo) > 0 {
			lo = rel.Tuples[j].R
		}
	}
	return spliceAt(rel, end, lo, rel.Tuples[i].R, f), nil
}

// PrependChild inserts the forest as the first children of the node with
// left endpoint parentL.
func PrependChild(rel *interval.Relation, parentL interval.Key, f xmltree.Forest) (*interval.Relation, error) {
	i, err := find(rel, parentL)
	if err != nil {
		return nil, err
	}
	var hi interval.Key
	if i+1 < len(rel.Tuples) && interval.Compare(rel.Tuples[i+1].L, rel.Tuples[i].R) < 0 {
		hi = rel.Tuples[i+1].L // first existing child
	} else {
		hi = rel.Tuples[i].R // childless parent
	}
	return spliceAt(rel, i+1, rel.Tuples[i].L, hi, f), nil
}

// ResolvePath returns the left endpoint of the node addressed by child
// ordinals: path[0] selects among the relation's top-level trees, each
// further ordinal among the children of the node selected so far — so
// [0] is the first root and [0, 2] its third child. The relation must be
// sorted by left endpoint (every relation the encoder or the update
// operators produce is).
func ResolvePath(rel *interval.Relation, path []int) (interval.Key, error) {
	if len(path) == 0 {
		return nil, fmt.Errorf("update: empty path")
	}
	// [lo, hi) brackets the candidate sibling run: the whole relation for
	// the roots, then each selected node's subtree interior.
	lo, hi := 0, len(rel.Tuples)
	cur := -1
	for depth, ord := range path {
		if ord < 0 {
			return nil, fmt.Errorf("update: negative ordinal %d at path depth %d", ord, depth)
		}
		j := lo
		for k := 0; k < ord && j < hi; k++ {
			j = subtreeEnd(rel, j)
		}
		if j >= hi {
			return nil, fmt.Errorf("%w: path %v has no child %d at depth %d", ErrNotFound, path, ord, depth)
		}
		cur = j
		lo, hi = j+1, subtreeEnd(rel, j)
	}
	return rel.Tuples[cur].L, nil
}

// NeedsRebuild reports whether the relation carries a negative key digit.
// Repeated front-of-document inserts step below key 0 (see prefixBetween);
// such relations remain fully queryable but cannot be persisted by
// package store until Rebuild re-encodes them.
func NeedsRebuild(rel *interval.Relation) bool {
	for _, t := range rel.Tuples {
		for _, d := range t.L {
			if d < 0 {
				return true
			}
		}
		for _, d := range t.R {
			if d < 0 {
				return true
			}
		}
	}
	return false
}

// Rebuild re-encodes the relation with the dense single-digit DFS counter,
// clearing any key growth accumulated by updates. It fails if the relation
// is not a valid encoding.
func Rebuild(rel *interval.Relation) (*interval.Relation, error) {
	f, err := interval.Decode(rel)
	if err != nil {
		return nil, err
	}
	return interval.Encode(f), nil
}

// lowerBoundAt returns the largest existing key strictly below tuple idx's
// left endpoint, or nil meaning "no lower bound". Scanning backwards, the
// candidates are the right endpoints of nodes that close before the target
// (preceding siblings and their ancestors, whose R values increase up the
// chain) until the first ancestor of the target, whose left endpoint is
// the final candidate. Worst case linear in the preceding subtree.
func lowerBoundAt(rel *interval.Relation, idx int) interval.Key {
	target := rel.Tuples[idx].L
	var best interval.Key
	for j := idx - 1; j >= 0; j-- {
		t := rel.Tuples[j]
		if interval.Compare(t.R, target) < 0 {
			if best == nil || interval.Compare(t.R, best) > 0 {
				best = t.R
			}
			continue
		}
		// t encloses the insertion point: the nearest ancestor.
		if best == nil || interval.Compare(t.L, best) > 0 {
			best = t.L
		}
		break
	}
	return best
}

// spliceAt inserts the forest's tuples at slice position idx with keys
// strictly between lo and hi (nil lo = below everything, nil hi = above
// everything).
func spliceAt(rel *interval.Relation, idx int, lo, hi interval.Key, f xmltree.Forest) *interval.Relation {
	prefix := prefixBetween(lo, hi)
	enc := interval.Encode(f)
	fresh := make([]interval.Tuple, 0, enc.Len())
	for _, t := range enc.Tuples {
		fresh = append(fresh, interval.Tuple{
			S: t.S,
			L: prefix.Append(t.L.Digit(0) + 1),
			R: prefix.Append(t.R.Digit(0) + 1),
		})
	}
	out := &interval.Relation{Tuples: make([]interval.Tuple, 0, len(rel.Tuples)+len(fresh))}
	out.Tuples = append(out.Tuples, rel.Tuples[:idx]...)
	out.Tuples = append(out.Tuples, fresh...)
	out.Tuples = append(out.Tuples, rel.Tuples[idx:]...)
	return out
}

// prefixBetween returns a key P such that P < P.Append(k) < hi for every
// k >= 1, and P.Append(k) > lo — i.e. an unbounded supply of fresh keys in
// the open interval (lo, hi).
func prefixBetween(lo, hi interval.Key) interval.Key {
	if lo == nil {
		if hi == nil {
			return interval.Key{-1}
		}
		// Below everything: step under hi's leading digit (possibly going
		// negative — keys order fine; see the package comment on storage).
		return interval.Key{hi.Digit(0) - 1}
	}
	p := lo.Norm()
	if hi == nil || !hi.HasPrefix(p) {
		// hi diverges above lo before p ends (or does not exist): any
		// extension of p stays below hi.
		return p
	}
	// hi = p ++ rest with rest > 0: descend through rest's leading zeros,
	// then step just below its first nonzero digit.
	for i := len(p); ; i++ {
		d := hi.Digit(i)
		if d != 0 {
			return p.Append(d - 1)
		}
		p = p.Append(0)
	}
}
