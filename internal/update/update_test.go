package update

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"dixq/internal/interval"
	"dixq/internal/xmltree"
)

// locate finds the DFS-indexed node in a forest and returns its parent's
// child slice (via a setter) and position — the oracle's addressing,
// mirroring the relation's tuple order (tuples sorted by L are exactly the
// DFS preorder).
type location struct {
	siblings *xmltree.Forest
	pos      int
}

func locate(f *xmltree.Forest, dfs int) (location, bool) {
	n := 0
	var walk func(siblings *xmltree.Forest) (location, bool)
	walk = func(siblings *xmltree.Forest) (location, bool) {
		for i := range *siblings {
			if n == dfs {
				return location{siblings: siblings, pos: i}, true
			}
			n++
			if loc, ok := walk(&(*siblings)[i].Children); ok {
				return loc, true
			}
		}
		return location{}, false
	}
	return walk(f)
}

// oracle applies the forest-level equivalent of each relation update.
func oracleDelete(f xmltree.Forest, dfs int) xmltree.Forest {
	c := f.Copy()
	loc, _ := locate(&c, dfs)
	*loc.siblings = append((*loc.siblings)[:loc.pos], (*loc.siblings)[loc.pos+1:]...)
	return c
}

func oracleInsertAfter(f xmltree.Forest, dfs int, ins xmltree.Forest) xmltree.Forest {
	c := f.Copy()
	loc, _ := locate(&c, dfs)
	s := *loc.siblings
	out := make(xmltree.Forest, 0, len(s)+len(ins))
	out = append(out, s[:loc.pos+1]...)
	out = append(out, ins.Copy()...)
	out = append(out, s[loc.pos+1:]...)
	*loc.siblings = out
	return c
}

func oracleInsertBefore(f xmltree.Forest, dfs int, ins xmltree.Forest) xmltree.Forest {
	c := f.Copy()
	loc, _ := locate(&c, dfs)
	s := *loc.siblings
	out := make(xmltree.Forest, 0, len(s)+len(ins))
	out = append(out, s[:loc.pos]...)
	out = append(out, ins.Copy()...)
	out = append(out, s[loc.pos:]...)
	*loc.siblings = out
	return c
}

func oracleAppendChild(f xmltree.Forest, dfs int, ins xmltree.Forest) xmltree.Forest {
	c := f.Copy()
	loc, _ := locate(&c, dfs)
	node := (*loc.siblings)[loc.pos]
	node.Children = append(node.Children, ins.Copy()...)
	return c
}

func oraclePrependChild(f xmltree.Forest, dfs int, ins xmltree.Forest) xmltree.Forest {
	c := f.Copy()
	loc, _ := locate(&c, dfs)
	node := (*loc.siblings)[loc.pos]
	node.Children = append(ins.Copy(), node.Children...)
	return c
}

func mustDecode(t *testing.T, rel *interval.Relation) xmltree.Forest {
	t.Helper()
	if err := interval.Validate(rel); err != nil {
		t.Fatalf("update produced an invalid encoding: %v", err)
	}
	f, err := interval.Decode(rel)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestBasicOperations(t *testing.T) {
	f, _ := xmltree.Parse(`<a><b>x</b><c/></a>`)
	rel := interval.Encode(f)
	bL := rel.Tuples[1].L // <b>
	ins := xmltree.Forest{xmltree.NewElement("n", xmltree.NewText("new"))}

	after, err := InsertAfter(rel, bL, ins)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustDecode(t, after).String(); got != `<a><b>x</b><n>new</n><c/></a>` {
		t.Errorf("InsertAfter = %s", got)
	}

	before, err := InsertBefore(rel, bL, ins)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustDecode(t, before).String(); got != `<a><n>new</n><b>x</b><c/></a>` {
		t.Errorf("InsertBefore = %s", got)
	}

	app, err := AppendChild(rel, rel.Tuples[0].L, ins)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustDecode(t, app).String(); got != `<a><b>x</b><c/><n>new</n></a>` {
		t.Errorf("AppendChild = %s", got)
	}

	pre, err := PrependChild(rel, rel.Tuples[0].L, ins)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustDecode(t, pre).String(); got != `<a><n>new</n><b>x</b><c/></a>` {
		t.Errorf("PrependChild = %s", got)
	}

	del, err := DeleteSubtree(rel, bL)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustDecode(t, del).String(); got != `<a><c/></a>` {
		t.Errorf("DeleteSubtree = %s", got)
	}
}

// TestLastChildInsertStaysInsideParent is the regression test for the
// boundary case where the target is its parent's last child: the parent's
// own right endpoint lies between the target and the next tuple, and the
// new siblings must stay below it.
func TestLastChildInsertStaysInsideParent(t *testing.T) {
	f, _ := xmltree.Parse(`<a><b/></a><t/>`)
	rel := interval.Encode(f)
	bL := rel.Tuples[1].L
	out, err := InsertAfter(rel, bL, xmltree.Forest{xmltree.NewElement("n")})
	if err != nil {
		t.Fatal(err)
	}
	if got := mustDecode(t, out).String(); got != `<a><b/><n/></a><t/>` {
		t.Errorf("got %s, want <a><b/><n/></a><t/>", got)
	}
	// And before a node whose preceding key is an ancestor's R.
	tL := rel.Tuples[2].L
	out2, err := InsertBefore(rel, tL, xmltree.Forest{xmltree.NewElement("m")})
	if err != nil {
		t.Fatal(err)
	}
	if got := mustDecode(t, out2).String(); got != `<a><b/></a><m/><t/>` {
		t.Errorf("got %s, want <a><b/></a><m/><t/>", got)
	}
}

func TestInsertBeforeFirstNode(t *testing.T) {
	f, _ := xmltree.Parse(`<a/>`)
	rel := interval.Encode(f)
	out, err := InsertBefore(rel, rel.Tuples[0].L, xmltree.Forest{xmltree.NewElement("z")})
	if err != nil {
		t.Fatal(err)
	}
	if got := mustDecode(t, out).String(); got != `<z/><a/>` {
		t.Errorf("got %s", got)
	}
	// Negative leading digits are legal for querying but not storable;
	// Rebuild clears them.
	rebuilt, err := Rebuild(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range rebuilt.Tuples {
		if len(tp.L) != 1 || tp.L[0] < 0 {
			t.Fatalf("Rebuild left key %s", tp.L)
		}
	}
}

func TestNotFound(t *testing.T) {
	rel := interval.Encode(xmltree.Forest{xmltree.NewElement("a")})
	missing := interval.Key{99}
	for _, err := range []error{
		errOf(DeleteSubtree(rel, missing)),
		errOf(InsertAfter(rel, missing, nil)),
		errOf(InsertBefore(rel, missing, nil)),
		errOf(AppendChild(rel, missing, nil)),
		errOf(PrependChild(rel, missing, nil)),
	} {
		if !errors.Is(err, ErrNotFound) {
			t.Errorf("err = %v, want ErrNotFound", err)
		}
	}
}

func errOf(_ *interval.Relation, err error) error { return err }

// TestRandomUpdateSequences applies random update sequences to a relation
// and to the decoded forest (the oracle); after every step the relation
// must stay a valid encoding that decodes to the oracle's forest.
func TestRandomUpdateSequences(t *testing.T) {
	cfg := &quick.Config{MaxCount: 150}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		forest := xmltree.RandomForest(rng, 10)
		if len(forest) == 0 {
			forest = xmltree.Forest{xmltree.NewElement("seed")}
		}
		rel := interval.Encode(forest)
		for step := 0; step < 8; step++ {
			if rel.Len() == 0 {
				break
			}
			dfs := rng.Intn(rel.Len())
			target := rel.Tuples[dfs].L
			ins := xmltree.RandomForest(rng, 4)
			var err error
			switch rng.Intn(5) {
			case 0:
				forest = oracleDelete(forest, dfs)
				rel, err = DeleteSubtree(rel, target)
			case 1:
				forest = oracleInsertAfter(forest, dfs, ins)
				rel, err = InsertAfter(rel, target, ins)
			case 2:
				forest = oracleInsertBefore(forest, dfs, ins)
				rel, err = InsertBefore(rel, target, ins)
			case 3:
				forest = oracleAppendChild(forest, dfs, ins)
				rel, err = AppendChild(rel, target, ins)
			default:
				forest = oraclePrependChild(forest, dfs, ins)
				rel, err = PrependChild(rel, target, ins)
			}
			if err != nil {
				t.Logf("seed %d step %d: %v", seed, step, err)
				return false
			}
			if err := interval.Validate(rel); err != nil {
				t.Logf("seed %d step %d: invalid encoding: %v", seed, step, err)
				return false
			}
			got, err := interval.Decode(rel)
			if err != nil {
				t.Logf("seed %d step %d: %v", seed, step, err)
				return false
			}
			if !got.Equal(forest) {
				t.Logf("seed %d step %d:\n got %s\nwant %s", seed, step, got.String(), forest.String())
				return false
			}
		}
		// Rebuild compacts back to single-digit keys.
		if rel.Len() > 0 {
			compact, err := Rebuild(rel)
			if err != nil {
				return false
			}
			got, _ := interval.Decode(compact)
			if !got.Equal(forest) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Error(err)
	}
}

func TestUpdatedRelationIsQueryable(t *testing.T) {
	// Updates compose with the engine: insert a person, query again.
	f, _ := xmltree.Parse(`<site><people><person id="p0"><name>A</name></person></people></site>`)
	rel := interval.Encode(f)
	// people element is tuple index 1.
	peopleL := rel.Tuples[1].L
	newPerson, _ := xmltree.Parse(`<person id="p1"><name>B</name></person>`)
	rel2, err := AppendChild(rel, peopleL, newPerson)
	if err != nil {
		t.Fatal(err)
	}
	got := mustDecode(t, rel2)
	names := 0
	var walk func(xmltree.Forest)
	walk = func(fs xmltree.Forest) {
		for _, n := range fs {
			if n.Label == "<name>" {
				names++
			}
			walk(n.Children)
		}
	}
	walk(got)
	if names != 2 {
		t.Fatalf("names = %d, want 2", names)
	}
}

// TestResolvePath: child-ordinal addressing against a known shape, with
// the DFS tuple index as the oracle.
func TestResolvePath(t *testing.T) {
	f, _ := xmltree.Parse(`<a><b><c/><d/></b><e/></a><t><u/></t>`)
	rel := interval.Encode(f)
	// DFS preorder: a=0 b=1 c=2 d=3 e=4 t=5 u=6.
	cases := []struct {
		path []int
		dfs  int
	}{
		{[]int{0}, 0},       // first root <a>
		{[]int{1}, 5},       // second root <t>
		{[]int{0, 0}, 1},    // <b>
		{[]int{0, 1}, 4},    // <e>, skipping over <b>'s subtree
		{[]int{0, 0, 0}, 2}, // <c>
		{[]int{0, 0, 1}, 3}, // <d>
		{[]int{1, 0}, 6},    // <u>
	}
	for _, tt := range cases {
		got, err := ResolvePath(rel, tt.path)
		if err != nil {
			t.Errorf("path %v: %v", tt.path, err)
			continue
		}
		if want := rel.Tuples[tt.dfs].L; !got.Equal(want) {
			t.Errorf("path %v = %s, want %s (dfs %d)", tt.path, got, want, tt.dfs)
		}
	}
	for _, bad := range [][]int{nil, {}, {2}, {0, 2}, {0, 1, 0}, {-1}, {0, -3}} {
		if _, err := ResolvePath(rel, bad); err == nil {
			t.Errorf("path %v resolved, want error", bad)
		}
	}
	// Out-of-range ordinals are ErrNotFound (a well-formed address into
	// absent structure); malformed ordinals are not.
	if _, err := ResolvePath(rel, []int{0, 9}); !errors.Is(err, ErrNotFound) {
		t.Errorf("out-of-range ordinal error = %v", err)
	}
	if _, err := ResolvePath(rel, []int{-1}); errors.Is(err, ErrNotFound) {
		t.Error("negative ordinal reported as not-found")
	}
}

// TestResolvePathAfterUpdates: addressing stays consistent across the
// update operators — the relation remains L-sorted, so ordinals track
// the post-update sibling order.
func TestResolvePathAfterUpdates(t *testing.T) {
	f, _ := xmltree.Parse(`<r><a/><b/></r>`)
	rel := interval.Encode(f)
	ins := xmltree.Forest{xmltree.NewElement("n")}
	aL, err := ResolvePath(rel, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := InsertAfter(rel, aL, ins)
	if err != nil {
		t.Fatal(err)
	}
	// <r><a/><n/><b/></r>: ordinal 1 is now the inserted node.
	nL, err := ResolvePath(rel2, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for ; i < len(rel2.Tuples); i++ {
		if rel2.Tuples[i].L.Equal(nL) {
			break
		}
	}
	if rel2.Tuples[i].S != "<n>" {
		t.Fatalf("ordinal 1 resolved to %s, want <n>", rel2.Tuples[i].S)
	}
}

// TestNeedsRebuild: only negative digits trigger a rebuild — growth
// alone (multi-digit keys from middle inserts) is storable as-is.
func TestNeedsRebuild(t *testing.T) {
	f, _ := xmltree.Parse(`<r><a/><b/></r>`)
	rel := interval.Encode(f)
	if NeedsRebuild(rel) {
		t.Fatal("fresh encoding flagged for rebuild")
	}
	aL := rel.Tuples[1].L
	mid, err := InsertAfter(rel, aL, xmltree.Forest{xmltree.NewElement("m")})
	if err != nil {
		t.Fatal(err)
	}
	if NeedsRebuild(mid) {
		t.Error("middle insert flagged for rebuild")
	}
	// A front insert steps below the first root's leading digit 0, so the
	// fresh keys carry a negative digit the store cannot write.
	front, err := InsertBefore(rel, rel.Tuples[0].L, xmltree.Forest{xmltree.NewElement("f1")})
	if err != nil {
		t.Fatal(err)
	}
	if !NeedsRebuild(front) {
		t.Error("front insert not flagged for rebuild")
	}
	rebuilt, err := Rebuild(front)
	if err != nil {
		t.Fatal(err)
	}
	if NeedsRebuild(rebuilt) {
		t.Error("rebuild left negative digits")
	}
}
