package dixq

import (
	"fmt"
	"sync"
	"testing"
)

// TestSnapshotIsolationUnderConcurrentUpdates is the MVCC differential
// stress test: writers continuously mutate, reload, drop and re-profile
// documents while readers pin snapshots and evaluate queries against
// them with several engines and parallelism settings. Every reader
// asserts that all runs against its pinned snapshot agree digit for
// digit (XML and result encoding) with the serial merge-join run on the
// same snapshot — a reader observing a concurrent writer's partial state
// would diverge. The CI race-stress job runs this under -race, where the
// copy-on-write discipline itself is checked: any writer mutating a
// published snapshot in place is a data race on a reader's pinned view.
func TestSnapshotIsolationUnderConcurrentUpdates(t *testing.T) {
	cat := NewCatalog()
	cat.Add("auction.xml", GenerateXMark(0.002, 7))

	// The writer below appends to and deletes from <site>'s child list;
	// it needs the base child count to address its own appended node.
	base, _ := cat.Snapshot().Document("auction.xml")
	root := base.Trees()
	if root != 1 {
		t.Fatalf("xmark document has %d roots", root)
	}
	siteChildren := len(base.tree()[0].Children)
	if siteChildren == 0 {
		t.Fatal("no site children")
	}

	queries := []string{
		`document("auction.xml")/site/people/person/name`,
		`for $p in document("auction.xml")/site/people/person return <n>{$p/name/text()}</n>`,
		`count(document("auction.xml")/site/regions/*)`,
	}
	parsed := make([]*Query, len(queries))
	for i, text := range queries {
		q, err := ParseQuery(text)
		if err != nil {
			t.Fatal(err)
		}
		parsed[i] = q
	}

	const readers = 4
	const iterations = 25
	done := make(chan struct{})
	var writersWg, readersWg sync.WaitGroup
	errs := make(chan error, readers+2)

	// Writer 1: structural updates on the queried document — append a
	// subtree under <site>, then delete it again. Each publish is a new
	// version; pinned snapshots must never see a half-applied pair.
	writersWg.Add(1)
	go func() {
		defer writersWg.Done()
		n := 0
		for {
			select {
			case <-done:
				return
			default:
			}
			frag, err := ParseDocument(fmt.Sprintf(`<scratch n="%d"><v>x</v></scratch>`, n))
			if err != nil {
				errs <- err
				return
			}
			if _, err := cat.Update("auction.xml", OpAppendChild, []int{0}, frag); err != nil {
				errs <- fmt.Errorf("append %d: %w", n, err)
				return
			}
			// The appended subtree is site's last child.
			if _, err := cat.Update("auction.xml", OpDelete, []int{0, siteChildren}, nil); err != nil {
				errs <- fmt.Errorf("delete %d: %w", n, err)
				return
			}
			if n%5 == 0 {
				cat.Reindex("auction.xml")
			}
			n++
		}
	}()

	// Writer 2: catalog-level churn on a document no query references —
	// load, re-profile, drop — so readers also race version bumps that
	// swap the index/stats sets wholesale.
	writersWg.Add(1)
	go func() {
		defer writersWg.Done()
		extra := GenerateXMark(0.0005, 11)
		for {
			select {
			case <-done:
				return
			default:
			}
			cat.Add("extra.xml", extra)
			cat.RefreshStats()
			cat.Drop("extra.xml")
		}
	}()

	for r := 0; r < readers; r++ {
		readersWg.Add(1)
		go func(r int) {
			defer readersWg.Done()
			for i := 0; i < iterations; i++ {
				snap := cat.Snapshot()
				q := parsed[(r+i)%len(parsed)]
				ref, err := q.Run(snap, &Options{Engine: MergeJoin, Parallelism: 1})
				if err != nil {
					errs <- fmt.Errorf("reader %d iter %d serial: %w", r, i, err)
					return
				}
				variants := []*Options{
					{Engine: MergeJoin, Parallelism: 4},
					{Engine: CostBased},
					{Engine: NestedLoop},
					{Engine: Interpreter},
				}
				for _, opts := range variants {
					got, err := q.Run(snap, opts)
					if err != nil {
						errs <- fmt.Errorf("reader %d iter %d engine %v: %w", r, i, opts.Engine, err)
						return
					}
					if got.XML() != ref.XML() {
						errs <- fmt.Errorf("reader %d iter %d engine %v (snapshot v%d): %q != %q",
							r, i, opts.Engine, snap.Version(), got.XML(), ref.XML())
						return
					}
					if opts.Engine != Interpreter {
						// DI engines must agree on the interval encoding of
						// the result, digit for digit.
						if ge, re := got.Document().Encoding(), ref.Document().Encoding(); ge != re {
							errs <- fmt.Errorf("reader %d iter %d engine %v: encoding diverged:\n%s\nvs\n%s",
								r, i, opts.Engine, ge, re)
							return
						}
					}
				}
				// The pinned snapshot still answers identically after all
				// the writes that happened during this iteration.
				again, err := q.Run(snap, &Options{Engine: MergeJoin, Parallelism: 1})
				if err != nil {
					errs <- fmt.Errorf("reader %d iter %d re-run: %w", r, i, err)
					return
				}
				if again.XML() != ref.XML() {
					errs <- fmt.Errorf("reader %d iter %d: pinned snapshot v%d changed under us", r, i, snap.Version())
					return
				}
			}
		}(r)
	}

	// Readers finishing (or any error) stops the writers.
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		readersWg.Wait()
	}()
	var firstErr error
	select {
	case firstErr = <-errs:
	case <-readerDone:
	}
	close(done)
	writersWg.Wait()
	<-readerDone
	if firstErr == nil {
		select {
		case firstErr = <-errs:
		default:
		}
	}
	if firstErr != nil {
		t.Fatal(firstErr)
	}

	// The mutated document still round-trips: its content is back to the
	// base (every writer pair was append-then-delete), possibly under
	// grown keys.
	final, ok := cat.Snapshot().Document("auction.xml")
	if !ok {
		t.Fatal("auction.xml vanished")
	}
	if !final.Equal(base) {
		t.Error("append/delete pairs did not restore the document")
	}
}
